"""The PPS-loop dependence model (paper §3.2, Figure 4).

Given a PPS body in SSA form, this module builds everything the flow
network needs:

1. the *body graph* (PPS loop minus the back edge),
2. its CFG SCCs and the summarized graph (step 1.3 — inner loops become
   single nodes so no cut can split them),
3. the dependence graph over summarized nodes (step 1.4): scalar flow
   dependences from SSA def-use chains, control dependences, memory /
   channel ordering dependences, and PPS-loop-carried flow dependences
   (which become *colocation* constraints: their endpoints are forced into
   the same dependence-graph SCC, step 1.5),
4. the dependence-graph SCCs ("units"), which are the atoms the balanced
   min-cut places into pipeline stages.

Node ids:  summarized CFG nodes are ints (SCC ids from the condensation);
units are ints as well (SCC ids of the dependence graph condensation).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.analysis.cfg import PpsLoop
from repro.analysis.control_dependence import controlled_by
from repro.analysis.graph import Condensation, Digraph
from repro.analysis.memdep import Access, accesses_of, conflicts
from repro.ir.function import Function
from repro.ir.values import VReg
from repro.obs import tracer as obs


class DepKind(enum.Enum):
    """Kinds of dependence edges between summarized CFG nodes."""

    DATA = "data"          # SSA flow dependence (payload: VReg)
    CONTROL = "control"    # control dependence (payload: branch node id)
    ORDER = "order"        # memory/channel ordering (payload: resource)
    COLOCATE = "colocate"  # PPS-loop-carried: endpoints must share a stage


@dataclass(frozen=True)
class DepEdge:
    """One dependence between two summarized CFG nodes."""

    src: int
    dst: int
    kind: DepKind
    payload: object = None


@dataclass
class VariableInfo:
    """A live-set candidate: an SSA value that may cross a cut."""

    reg: VReg
    def_node: int               # summarized node that defines it
    use_nodes: set[int] = field(default_factory=set)

    @property
    def words(self) -> int:
        return self.reg.width


class LoopDependenceModel:
    """Dependence structure of one PPS loop body (SSA form)."""

    def __init__(self, ssa: Function, loop: PpsLoop):
        self.ssa = ssa
        self.loop = loop
        self.body = loop.body_graph()
        self.summary = Condensation(self.body)
        self.sgraph = self.summary.graph
        self.header_node = self.summary.component_of[loop.header]
        self.latch_node = self.summary.component_of[loop.latch]
        self.edges: list[DepEdge] = []
        self.variables: dict[VReg, VariableInfo] = {}
        self.controlled: dict[int, set[int]] = {}
        self._reach: dict[int, set[int]] = {}
        self._build()
        self.units = self._condense_units()
        # Lazy memos over the (immutable) unit structure; computed on
        # first use and shared by every cut, refinement pass, and
        # verifier check that consults the model.
        self._unit_weights: dict[int, int] | None = None
        self._unit_edges: list[DepEdge] | None = None
        self._unit_adjacency: tuple[dict, dict] | None = None
        obs.instant("dependence_model", cat="compile",
                    function=ssa.name, nodes=len(self.sgraph),
                    dep_edges=len(self.edges),
                    variables=len(self.variables),
                    units=len(self.units.members))

    # -- helpers -----------------------------------------------------------

    def node_of_block(self, block_name: str) -> int:
        return self.summary.component_of[block_name]

    def blocks_of_node(self, node: int) -> list[str]:
        return self.summary.members[node]

    def node_weight(self, node: int) -> int:
        return sum(self.ssa.block(name).weight()
                   for name in self.summary.members[node])

    def _reaches(self, src: int, dst: int) -> bool:
        if src not in self._reach:
            self._reach[src] = self.sgraph.reachable_from(src)
        return dst in self._reach[src]

    # -- construction ----------------------------------------------------------

    def _build(self) -> None:
        self._build_scalar_flow()
        self._build_control()
        self._build_order()
        self._build_loop_carried_scalars()

    def _build_scalar_flow(self) -> None:
        """SSA def-use edges between different summarized nodes."""
        def_node: dict[VReg, int] = {}
        for name in self.loop.body:
            node = self.node_of_block(name)
            for inst in self.ssa.block(name).all_instructions():
                for dest in inst.defs():
                    def_node[dest] = node
        for name in self.loop.body:
            node = self.node_of_block(name)
            for inst in self.ssa.block(name).all_instructions():
                for reg in inst.used_regs():
                    src = def_node.get(reg)
                    if src is None:
                        # Defined in the prologue (replicated per stage) or
                        # zero-initialized: never needs transmission.
                        continue
                    info = self.variables.get(reg)
                    if info is None:
                        info = VariableInfo(reg, src)
                        self.variables[reg] = info
                    if src != node:
                        info.use_nodes.add(node)
                        self.edges.append(DepEdge(src, node, DepKind.DATA, reg))

    def _build_control(self) -> None:
        """Control dependence over the summarized graph (paper step 1.4)."""
        self.controlled = {
            node: deps for node, deps in controlled_by(self.sgraph).items() if deps
        }
        for brancher, dependents in self.controlled.items():
            for dependent in dependents:
                if dependent != brancher:
                    self.edges.append(
                        DepEdge(brancher, dependent, DepKind.CONTROL, brancher)
                    )

    def _build_order(self) -> None:
        """Memory/channel/device ordering and colocation dependences."""
        by_resource: dict[object, list[tuple[int, Access]]] = {}
        for name in self.loop.body:
            node = self.node_of_block(name)
            for inst in self.ssa.block(name).all_instructions():
                for access in accesses_of(inst):
                    by_resource.setdefault(access.resource, []).append(
                        (node, access)
                    )
        for resource, entries in by_resource.items():
            for i, (node_a, access_a) in enumerate(entries):
                for node_b, access_b in entries[i + 1 :]:
                    if node_a == node_b:
                        continue
                    if not conflicts(access_a, access_b):
                        continue
                    carried = access_a.loop_carried or access_b.loop_carried
                    if carried:
                        self.edges.append(
                            DepEdge(node_a, node_b, DepKind.COLOCATE, resource)
                        )
                    elif self._reaches(node_a, node_b):
                        self.edges.append(
                            DepEdge(node_a, node_b, DepKind.ORDER, resource)
                        )
                    elif self._reaches(node_b, node_a):
                        self.edges.append(
                            DepEdge(node_b, node_a, DepKind.ORDER, resource)
                        )
                    # No path either way: the accesses are on exclusive
                    # branches and never execute in the same iteration.

    def _build_loop_carried_scalars(self) -> None:
        """PPS-loop-carried flow dependences (paper step 1.4).

        A φ at the loop header consumes, on the back edge, a value defined
        by the previous iteration.  Source and sink of such a dependence
        must be in the same dependence-graph SCC, so the def node is
        colocated with the header.
        """
        def_node: dict[VReg, int] = {}
        for name in self.loop.body:
            node = self.node_of_block(name)
            for inst in self.ssa.block(name).all_instructions():
                for dest in inst.defs():
                    def_node[dest] = node
        header_block = self.ssa.block(self.loop.header)
        for phi in header_block.phis():
            value = phi.incomings.get(self.loop.latch)
            if isinstance(value, VReg) and value in def_node:
                src = def_node[value]
                if src != self.header_node:
                    self.edges.append(
                        DepEdge(src, self.header_node, DepKind.COLOCATE, value)
                    )

    def _condense_units(self) -> Condensation:
        """Step 1.5: SCCs of the dependence graph are the placement atoms.

        The graph condensed here carries the dependence edges (colocation
        in both directions) *plus* the summarized CFG edges: a pipeline
        stage must be a control-flow-closed region (the paper's cut is a
        set of control flow points), so summarized nodes that sit on a
        cycle of dependence and control-flow constraints can never be
        separated and are merged into one placement atom.
        """
        dep_graph = Digraph()
        for node in self.sgraph.nodes:
            dep_graph.add_node(node)
        for edge in self.edges:
            dep_graph.add_edge(edge.src, edge.dst)
            if edge.kind is DepKind.COLOCATE:
                dep_graph.add_edge(edge.dst, edge.src)
        for src, dst in self.sgraph.edges():
            dep_graph.add_edge(src, dst)
        return Condensation(dep_graph)

    # -- unit-level views (what the flow network consumes) ---------------------

    def unit_of_node(self, node: int) -> int:
        return self.units.component_of[node]

    def unit_of_block(self, block_name: str) -> int:
        return self.unit_of_node(self.node_of_block(block_name))

    def unit_blocks(self, unit: int) -> list[str]:
        blocks: list[str] = []
        for node in self.units.members[unit]:
            blocks.extend(self.summary.members[node])
        return blocks

    def unit_weight(self, unit: int) -> int:
        return self.unit_weights()[unit]

    def unit_weights(self) -> dict[int, int]:
        """Static weight of every unit (memoized; units are immutable)."""
        if self._unit_weights is None:
            self._unit_weights = {
                unit: sum(self.node_weight(node) for node in members)
                for unit, members in self.units.members.items()
            }
        return self._unit_weights

    def unit_edges(self) -> list[DepEdge]:
        """Dependence edges lifted to units (intra-unit edges dropped;
        memoized — callers must not mutate the returned list)."""
        if self._unit_edges is None:
            lifted = []
            for edge in self.edges:
                src = self.unit_of_node(edge.src)
                dst = self.unit_of_node(edge.dst)
                if src != dst:
                    lifted.append(DepEdge(src, dst, edge.kind, edge.payload))
            self._unit_edges = lifted
        return self._unit_edges

    def unit_adjacency(self) -> tuple[dict[int, set[int]], dict[int, set[int]]]:
        """Constraint adjacency at unit granularity: ``(succs, preds)``.

        Combines the lifted dependence edges with the summarized CFG
        edges — the exact legality structure the flow network encodes —
        and is memoized, so cut selection, refinement, and frontier
        computation share one table per program.
        """
        if self._unit_adjacency is None:
            succs: dict[int, set[int]] = {unit: set()
                                          for unit in self.units.members}
            preds: dict[int, set[int]] = {unit: set()
                                          for unit in self.units.members}
            for edge in self.unit_edges():
                if edge.src != edge.dst:
                    succs[edge.src].add(edge.dst)
                    preds[edge.dst].add(edge.src)
            for src_node in self.sgraph.nodes:
                src_unit = self.unit_of_node(src_node)
                for dst_node in self.sgraph.succs(src_node):
                    dst_unit = self.unit_of_node(dst_node)
                    if src_unit != dst_unit:
                        succs[src_unit].add(dst_unit)
                        preds[dst_unit].add(src_unit)
            self._unit_adjacency = (succs, preds)
        return self._unit_adjacency

    @property
    def header_unit(self) -> int:
        return self.unit_of_node(self.header_node)

    @property
    def latch_unit(self) -> int:
        return self.unit_of_node(self.latch_node)

    def total_weight(self) -> int:
        return sum(self.unit_weight(unit) for unit in self.units.members)

"""Effect extraction: which non-register resources an instruction touches.

Every :class:`~repro.ir.instructions.Call` to an intrinsic, and every array
access, is summarized as one or more :class:`Access` records.  The
dependence-graph builder turns conflicting accesses into ordering edges:

* ``serial`` resources (pipes, devices, traces, read-write memory regions)
  behave like the paper's shared flow state: *all* accesses conflict, and
  the conflicts are PPS-loop-carried, so every access to one such resource
  must land in the same pipeline stage (the QM/Scheduler effect).
* non-serial resources (packet store, per-iteration local arrays) order
  reads after writes *within* one iteration only.
* ``readonly`` memory regions produce no conflicts at all (route tables).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.ir.instructions import ArrayLoad, ArrayStore, Call, Instruction
from repro.ir.values import PipeRef, RegionRef
from repro.lang.intrinsics import Effect, get_intrinsic


@dataclass(frozen=True)
class Access:
    """One resource access.

    Attributes:
        resource: Hashable identity of the ordering domain.
        is_write: Writes conflict with everything; reads conflict with writes.
        serial: All accesses conflict regardless of read/write, and the
            conflict is PPS-loop-carried (must-colocate).
        loop_carried: Conflicts persist across loop iterations.
    """

    resource: Hashable
    is_write: bool
    serial: bool = False
    loop_carried: bool = False


def accesses_of(inst: Instruction) -> list[Access]:
    """Summarize the resource accesses of one instruction."""
    if isinstance(inst, ArrayLoad):
        return [Access(("array", inst.array.name), is_write=False,
                       loop_carried=inst.array.loop_carried,
                       serial=False)]
    if isinstance(inst, ArrayStore):
        return [Access(("array", inst.array.name), is_write=True,
                       loop_carried=inst.array.loop_carried,
                       serial=False)]
    if not isinstance(inst, Call) or not inst.is_intrinsic:
        return []
    intrinsic = get_intrinsic(inst.callee)
    effect = intrinsic.effect
    if effect is Effect.PURE:
        return []
    if effect in (Effect.PKT_READ, Effect.PKT_WRITE):
        if inst.callee == "pkt_alloc":
            # Handle assignment must stay in iteration order so pipelined
            # execution produces the same handle values as sequential
            # execution (handles flow into pipes and queues).
            return [Access(("pkt",), is_write=True),
                    Access(("pkt_alloc",), is_write=True, serial=True,
                           loop_carried=True)]
        return [Access(("pkt",), is_write=(effect is Effect.PKT_WRITE))]
    if effect in (Effect.MEM_READ, Effect.MEM_WRITE):
        region = inst.args[0]
        assert isinstance(region, RegionRef)
        if region.readonly:
            return []  # populated by the host before the pipeline runs
        # Read-write shared state: serialize everything, across iterations.
        return [Access(("mem", region.name),
                       is_write=(effect is Effect.MEM_WRITE),
                       serial=True, loop_carried=True)]
    if effect in (Effect.CHANNEL_IN, Effect.CHANNEL_OUT):
        pipe = inst.args[0]
        assert isinstance(pipe, PipeRef)
        return [Access(("pipe", pipe.name), is_write=True,
                       serial=True, loop_carried=True)]
    if effect is Effect.DEVICE_IN:
        if inst.callee == "rbuf_next":
            # Dequeue order from the media interface is the packet order.
            return [Access(("device_in",), is_write=True, serial=True,
                           loop_carried=True)]
        # Status/data reads (and the final free) of a held rbuf element do
        # not touch the device queue: they order like per-packet state.
        return [Access(("rbuf_elem",),
                       is_write=(inst.callee == "rbuf_free"))]
    if effect is Effect.DEVICE_OUT:
        if inst.callee == "tbuf_commit":
            # Commit order is wire order: strictly serialized.  The commit
            # also reads the element contents, so it must stay downstream
            # of every tbuf_store that filled the element.
            return [Access(("device_out",), is_write=True, serial=True,
                           loop_carried=True),
                    Access(("tbuf_elem",), is_write=False)]
        # Allocating and filling a tbuf element is per-packet work.
        return [Access(("tbuf_elem",), is_write=True)]
    if effect is Effect.TRACE:
        tag = inst.args[0]
        from repro.ir.values import Const

        key = tag.value if isinstance(tag, Const) else None
        return [Access(("trace", key), is_write=True, serial=True,
                       loop_carried=True)]
    raise AssertionError(f"unhandled effect {effect}")


def conflicts(a: Access, b: Access) -> bool:
    """True if two accesses to resources must stay ordered."""
    if a.resource != b.resource:
        return False
    if a.serial or b.serial:
        return True
    return a.is_write or b.is_write

"""Graphviz (DOT) export for CFGs, dependence models, and stage maps.

Purely textual — no graphviz dependency; the output renders with any
``dot`` binary.  Handy for debugging partitions::

    from repro.analysis.viz import stage_map_to_dot
    print(stage_map_to_dot(result))           # a PipelineResult
"""

from __future__ import annotations

from repro.analysis.dependence_graph import DepKind, LoopDependenceModel
from repro.ir.function import Function

_STAGE_COLORS = [
    "#a6cee3", "#b2df8a", "#fb9a99", "#fdbf6f", "#cab2d6",
    "#ffff99", "#1f78b4", "#33a02c", "#e31a1c", "#ff7f00",
]


def _quote(text: str) -> str:
    return '"' + str(text).replace('"', r"\"") + '"'


def cfg_to_dot(function: Function, *, include_instructions: bool = False,
               name: str | None = None) -> str:
    """The function's CFG as a DOT digraph."""
    lines = [f"digraph {_quote(name or function.name)} {{",
             "  node [shape=box, fontname=monospace];"]
    for block in function.ordered_blocks():
        if include_instructions:
            body = "\\l".join(str(inst) for inst in block.all_instructions())
            label = f"{block.name}\\l{body}\\l"
        else:
            label = f"{block.name} ({block.weight()}w)"
        extras = ", style=bold" if block.name == function.entry else ""
        lines.append(f"  {_quote(block.name)} [label={_quote(label)}{extras}];")
    for block in function.ordered_blocks():
        for successor in block.successors():
            lines.append(f"  {_quote(block.name)} -> {_quote(successor)};")
    lines.append("}")
    return "\n".join(lines)


_DEP_STYLES = {
    DepKind.DATA: 'color="#1f78b4"',
    DepKind.CONTROL: 'color="#33a02c", style=dashed',
    DepKind.ORDER: 'color="#e31a1c", style=dotted',
    DepKind.COLOCATE: 'color="#6a3d9a", dir=both',
}


def dependence_model_to_dot(model: LoopDependenceModel) -> str:
    """The unit-level dependence graph as a DOT digraph.

    Units are boxes labelled with their blocks and weight; edge styles
    distinguish data / control / order / colocation dependences.
    """
    lines = ["digraph dependence_units {",
             "  node [shape=box, fontname=monospace];"]
    for unit in sorted(model.units.members):
        blocks = model.unit_blocks(unit)
        sample = ", ".join(sorted(blocks)[:3])
        if len(blocks) > 3:
            sample += f", … (+{len(blocks) - 3})"
        label = f"u{unit} [{model.unit_weight(unit)}w]\\n{sample}"
        lines.append(f"  u{unit} [label={_quote(label)}];")
    seen = set()
    for edge in model.unit_edges():
        key = (edge.src, edge.dst, edge.kind)
        if key in seen:
            continue
        seen.add(key)
        style = _DEP_STYLES[edge.kind]
        lines.append(f"  u{edge.src} -> u{edge.dst} [{style}];")
    lines.append("}")
    return "\n".join(lines)


def stage_map_to_dot(result) -> str:
    """A PipelineResult's CFG colored by stage (one cluster per stage)."""
    function = result.normalized
    assignment = result.assignment
    lines = ["digraph stage_map {",
             "  node [shape=box, fontname=monospace, style=filled];",
             "  rankdir=TB;"]
    by_stage: dict[int, list[str]] = {}
    for block_name, stage in assignment.block_stage.items():
        by_stage.setdefault(stage, []).append(block_name)
    for stage in sorted(by_stage):
        color = _STAGE_COLORS[(stage - 1) % len(_STAGE_COLORS)]
        lines.append(f"  subgraph cluster_stage{stage} {{")
        lines.append(f"    label={_quote(f'stage {stage}')};")
        for block_name in sorted(by_stage[stage]):
            weight = function.block(block_name).weight()
            label = f"{block_name} ({weight}w)"
            lines.append(f"    {_quote(block_name)} "
                         f"[label={_quote(label)}, fillcolor={_quote(color)}];")
        lines.append("  }")
    body = set(result.loop.body)
    for block_name in sorted(body):
        for successor in function.block(block_name).successors():
            if successor in body:
                lines.append(f"  {_quote(block_name)} -> {_quote(successor)};")
    lines.append("}")
    return "\n".join(lines)

"""Dominator trees, dominance frontiers, and post-dominance.

Implementation: the Cooper–Harvey–Kennedy iterative algorithm over reverse
postorder, which is simple and fast at PPS scales.  Post-dominance reuses
the same engine on the reversed graph with a virtual exit node that absorbs
every block without successors.
"""

from __future__ import annotations

from repro.analysis.graph import Digraph, Node

#: Virtual exit node used for post-dominance on multi-exit graphs.
VIRTUAL_EXIT = "<virtual-exit>"


class DominatorTree:
    """Immediate dominators, dominance queries, and dominance frontiers."""

    def __init__(self, graph: Digraph, idom: dict[Node, Node], order: list[Node]):
        self.graph = graph
        self.idom = idom  # entry maps to itself
        self.order = order  # reverse postorder
        self._depth: dict[Node, int] = {}
        root = graph.entry
        assert root is not None
        self._depth[root] = 0
        for node in order:
            if node == root or node not in idom:
                continue
            self._depth[node] = self._depth[idom[node]] + 1
        self._children: dict[Node, list[Node]] = {node: [] for node in order}
        for node in order:
            if node != root and node in idom:
                self._children[idom[node]].append(node)

    # -- construction ---------------------------------------------------------

    @classmethod
    def compute(cls, target) -> "DominatorTree":
        """Compute dominators for a :class:`Digraph` or an IR function."""
        if not isinstance(target, Digraph):
            from repro.analysis.cfg import cfg_of

            target = cfg_of(target)
        graph = target
        entry = graph.entry
        assert entry is not None
        order = graph.reverse_postorder()
        index = {node: position for position, node in enumerate(order)}
        idom: dict[Node, Node] = {entry: entry}

        def intersect(a: Node, b: Node) -> Node:
            while a != b:
                while index[a] > index[b]:
                    a = idom[a]
                while index[b] > index[a]:
                    b = idom[b]
            return a

        changed = True
        while changed:
            changed = False
            for node in order:
                if node == entry:
                    continue
                candidates = [pred for pred in graph.preds(node)
                              if pred in idom and pred in index]
                if not candidates:
                    continue
                new_idom = candidates[0]
                for pred in candidates[1:]:
                    new_idom = intersect(pred, new_idom)
                if idom.get(node) != new_idom:
                    idom[node] = new_idom
                    changed = True
        return cls(graph, idom, order)

    # -- queries ------------------------------------------------------------

    def dominates(self, a: Node, b: Node) -> bool:
        """True if ``a`` dominates ``b`` (reflexive)."""
        node = b
        while True:
            if node == a:
                return True
            parent = self.idom.get(node)
            if parent is None or parent == node:
                return False
            node = parent

    def strictly_dominates(self, a: Node, b: Node) -> bool:
        return a != b and self.dominates(a, b)

    def immediate_dominator(self, node: Node) -> Node | None:
        parent = self.idom.get(node)
        if parent is None or parent == node:
            return None
        return parent

    def children(self, node: Node) -> list[Node]:
        return list(self._children.get(node, []))

    def depth(self, node: Node) -> int:
        return self._depth[node]

    def dominance_frontiers(self) -> dict[Node, set[Node]]:
        """Cytron-style dominance frontiers for every node."""
        frontiers: dict[Node, set[Node]] = {node: set() for node in self.order}
        for node in self.order:
            preds = [p for p in self.graph.preds(node) if p in self.idom]
            if len(preds) < 2:
                continue
            for pred in preds:
                runner = pred
                while runner != self.idom[node]:
                    frontiers[runner].add(node)
                    runner = self.idom[runner]
        return frontiers


def post_dominator_tree(graph: Digraph) -> tuple[DominatorTree, Digraph]:
    """Post-dominators of ``graph``.

    Returns ``(tree, augmented_reverse_graph)``.  A virtual exit is added
    with an edge from every node that has no successors; the tree is the
    dominator tree of the reversed, augmented graph rooted at the virtual
    exit.  Raises ``ValueError`` if no node can reach an exit (an infinite
    region) — callers pass the PPS loop *body* graph, whose latch is always
    an exit.
    """
    exits = [node for node in graph.nodes if not graph.succs(node)]
    if not exits:
        raise ValueError("graph has no exit nodes; post-dominance undefined")
    augmented = Digraph()
    for node in graph.nodes:
        augmented.add_node(node)
    augmented.add_node(VIRTUAL_EXIT)
    for src, dst in graph.edges():
        augmented.add_edge(dst, src)
    for exit_node in exits:
        augmented.add_edge(VIRTUAL_EXIT, exit_node)
    augmented.entry = VIRTUAL_EXIT
    return DominatorTree.compute(augmented), augmented

"""Control-flow-graph views of IR functions.

``cfg_of`` builds a :class:`~repro.analysis.graph.Digraph` over block names.
``PpsLoop`` identifies the PPS loop of a lowered PPS body and exposes the
*body graph*: the loop's blocks with the back edge removed — the region the
pipelining transformation partitions (the paper's "PPS loop body").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.graph import Digraph
from repro.ir.function import Function


def cfg_of(function: Function) -> Digraph:
    """The full control-flow graph of ``function``."""
    graph = Digraph(entry=function.entry)
    for name in function.block_order:
        graph.add_node(name)
    for block in function.ordered_blocks():
        for successor in block.successors():
            graph.add_edge(block.name, successor)
    return graph


@dataclass
class PpsLoop:
    """The PPS loop of a lowered PPS body.

    Attributes:
        function: The lowered PPS function.
        header: Loop header block (the start of each iteration).
        latch: The unique block whose jump back to ``header`` closes the loop.
        body: All block names in the loop, header first.
    """

    function: Function
    header: str
    latch: str
    body: list[str]

    def body_graph(self) -> Digraph:
        """The loop body as a graph with the back edge removed.

        The header is the entry; the latch has no successors.  Inner loops
        remain as cycles (they are the CFG SCCs the transformation must not
        split).
        """
        graph = Digraph(entry=self.header)
        body = set(self.body)
        for name in self.body:
            graph.add_node(name)
        for name in self.body:
            for successor in self.function.block(name).successors():
                if successor in body and not (name == self.latch and
                                              successor == self.header):
                    graph.add_edge(name, successor)
        return graph


def find_pps_loop(function: Function) -> PpsLoop:
    """Locate the PPS loop in a lowered PPS body.

    Lowering guarantees the shape: a prologue chain from the function entry
    reaches the loop header; the header's only in-loop predecessor is the
    unique latch; every block except the prologue is in the loop (the PPS
    loop never exits).
    """
    graph = cfg_of(function)
    assert function.entry is not None
    # The header is the unique block with two predecessor groups: one from
    # the prologue (outside the loop) and one back edge.  Lowering marks it
    # by name prefix for robustness.
    headers = [name for name in function.block_order
               if name.startswith("pps_header")]
    if len(headers) != 1:
        raise ValueError(
            f"{function.name}: expected exactly one PPS loop header, "
            f"found {headers}"
        )
    header = headers[0]
    preds = graph.preds(header)
    # Blocks reachable from the header without leaving the loop: since the
    # PPS loop is infinite, everything reachable from header is in the loop.
    body = graph.dfs_preorder(header)
    body_set = set(body)
    latches = [pred for pred in preds if pred in body_set]
    if len(latches) != 1:
        raise ValueError(
            f"{function.name}: expected a unique PPS back edge, found "
            f"{latches}"
        )
    return PpsLoop(function=function, header=header, latch=latches[0], body=body)


def split_large_blocks(function: Function, max_instructions: int) -> int:
    """Split blocks longer than ``max_instructions`` into chains.

    Finer block granularity lets the balanced-cut algorithm place a cut in
    the middle of long straight-line runs (the paper cuts at arbitrary
    control-flow points).  Returns the number of splits performed.
    """
    from repro.ir.instructions import Jump, Phi

    splits = 0
    for name in list(function.block_order):
        block = function.block(name)
        while len(block.instructions) > max_instructions:
            # Never separate a phi from its block head.
            cut_at = max_instructions
            while (cut_at < len(block.instructions) and
                   isinstance(block.instructions[cut_at], Phi)):
                cut_at += 1
            if cut_at >= len(block.instructions):
                break
            rest = block.instructions[cut_at:]
            old_term = block.terminator
            assert old_term is not None
            block.instructions = block.instructions[:cut_at]
            # The fresh name must not inherit a "pps_header" prefix, which
            # find_pps_loop uses to identify the loop header.
            tail = function.new_block("chunk")
            tail.instructions = rest
            tail.set_terminator(old_term)
            block.terminator = None
            block.set_terminator(Jump(tail.name, location=old_term.location))
            # Phi incomings in successors must be renamed to the tail block.
            for succ_name in old_term.successors():
                for phi in function.block(succ_name).phis():
                    if block.name in phi.incomings:
                        phi.incomings[tail.name] = phi.incomings.pop(block.name)
            splits += 1
            block = tail
    return splits

"""Classic backward live-variable analysis over IR functions.

Works on both SSA and non-SSA form.  φ-functions are handled edge-wise:
the value incoming from predecessor ``p`` is live-out of ``p`` (not live-in
of the φ's block), which is the standard convention.

``Liveness`` exposes block-level ``live_in`` / ``live_out`` plus
``live_at_edge`` and per-instruction iteration, which the live-set
computation of the pipelining transformation uses (the paper's "data that
are alive at the cut ... the contents of live registers").
"""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.instructions import Phi
from repro.ir.values import VReg


class Liveness:
    """Live-variable sets for every block of a function."""

    def __init__(self, function: Function):
        self.function = function
        self.live_in: dict[str, frozenset[VReg]] = {}
        self.live_out: dict[str, frozenset[VReg]] = {}
        self._compute()

    def _block_summary(self, name: str) -> tuple[set[VReg], set[VReg], dict[str, set[VReg]]]:
        """(use, def, phi_uses_by_pred) for one block.

        ``use`` contains registers read before any write in the block
        (excluding φ operands); ``phi_uses_by_pred`` maps predecessor names
        to φ operands consumed on that edge.
        """
        block = self.function.block(name)
        uses: set[VReg] = set()
        defs: set[VReg] = set()
        phi_uses: dict[str, set[VReg]] = {}
        for inst in block.all_instructions():
            if isinstance(inst, Phi):
                for pred, value in inst.incomings.items():
                    if isinstance(value, VReg):
                        phi_uses.setdefault(pred, set()).add(value)
                defs.add(inst.dest)
                continue
            for reg in inst.used_regs():
                if reg not in defs:
                    uses.add(reg)
            for reg in inst.defs():
                defs.add(reg)
        return uses, defs, phi_uses

    def _compute(self) -> None:
        order = self.function.block_order
        summaries = {name: self._block_summary(name) for name in order}
        live_in: dict[str, set[VReg]] = {name: set() for name in order}
        live_out: dict[str, set[VReg]] = {name: set() for name in order}
        changed = True
        while changed:
            changed = False
            for name in reversed(order):
                uses, defs, _ = summaries[name]
                block = self.function.block(name)
                out: set[VReg] = set()
                for succ in block.successors():
                    out |= live_in[succ]
                    _, _, succ_phi_uses = summaries[succ]
                    out |= succ_phi_uses.get(name, set())
                    # φ dests are defined at the head of succ, so they are
                    # not live into succ; live_in already excludes them.
                new_in = uses | (out - defs)
                if out != live_out[name] or new_in != live_in[name]:
                    live_out[name] = out
                    live_in[name] = new_in
                    changed = True
        self.live_in = {name: frozenset(values) for name, values in live_in.items()}
        self.live_out = {name: frozenset(values) for name, values in live_out.items()}

    def live_at_edge(self, pred: str, succ: str) -> frozenset[VReg]:
        """Registers live on the CFG edge ``pred -> succ``.

        This is live-in of ``succ`` plus the φ operands consumed on the
        edge, minus φ destinations of ``succ`` (defined after the edge).
        """
        succ_block = self.function.block(succ)
        result = set(self.live_in[succ])
        for phi in succ_block.phis():
            result.discard(phi.dest)
            value = phi.incomings.get(pred)
            if isinstance(value, VReg):
                result.add(value)
        return frozenset(result)

    def live_after(self, block_name: str, index: int) -> frozenset[VReg]:
        """Registers live immediately after instruction ``index`` of a block.

        ``index`` counts over ``all_instructions()`` (terminator included).
        """
        block = self.function.block(block_name)
        instructions = block.all_instructions()
        live = set(self.live_out[block_name])
        for inst in reversed(instructions[index + 1 :]):
            if isinstance(inst, Phi):
                live.discard(inst.dest)
                continue
            for reg in inst.defs():
                live.discard(reg)
            for reg in inst.used_regs():
                live.add(reg)
        return frozenset(live)

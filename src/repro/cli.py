"""Command-line interface: compile, partition, run, and report.

Usage (also via ``python -m repro``)::

    repro check file.ppc                     # compile + semantic check
    repro ir file.ppc [--pps NAME]           # dump the lowered, inlined IR
    repro pipeline file.ppc --pps NAME -d 4  # partition; print stage map
    repro run file.ppc --pps NAME -d 4 \\
        --feed in_q=1,2,3 --iterations 3     # execute on the simulator
    repro run ... --profile                  # + runtime counter report
    repro run ... --faults plan.json \\
        --watchdog-quantum 200000 \\
        --isolate-traps                      # chaos-hardened execution
    repro trace file.ppc --pps NAME -d 4 \\
        -o trace.json                        # Chrome-trace of compile + run
    repro chaos [--app ipv4] [--plans ...]   # chaos differential check
    repro chaos --sweep -j 4                 # parallel multi-app chaos sweep
    repro serve --shards 4 \\
        --faults worker-kill                 # supervised sharded serving
    repro figures [--packets 60]             # regenerate the paper figures
    repro bench [--quick] [-j N] [-o FILE]   # performance regression harness
    repro bench --profile                    # + partition-phase table
    repro plan -j 4                          # pre-partition matrix into cache
    repro fuzz [--seeds 50] [--out DIR]      # progen fuzz of the partitioner
    repro fuzz -j 4                          # parallel fuzz campaign
    repro fuzz --self-test                   # verifier mutation self-test

PPS-C files conventionally use the ``.ppc`` extension.

``repro pipeline`` / ``repro run`` partition through the supervisor
(:mod:`repro.pipeline.supervisor`): the result is independently verified
(:mod:`repro.pipeline.verify`), and on partitioner faults or verifier
rejection the requested degree degrades down a D → ⌈D/2⌉ → … → 1 ladder
rather than failing outright.  ``--keep-going`` on ``chaos --sweep`` and
``bench -j N`` likewise trades fail-fast for per-cell failure records.

Partition results are memoized in a content-addressed artifact cache
(``--cache-dir DIR``, default ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``;
``--no-cache`` opts out) — see ``docs/caching.md``.

Exit codes (see :mod:`repro.errors`): 0 success, 1 compile/pipeline/IO
failure (including sweep worker crashes), 2 usage error (unknown PPS,
malformed ``--feed`` or fault plan), 3 runtime failure (interpreter
trap, deadlock/livelock, serving pool collapse), 4 degraded success
(the supervisor delivered a verified partition, but at a lower degree
than requested), 5 degraded serving (``repro serve`` delivered every
committed batch, but only by re-sharding a failed worker's flows onto
survivors or by leaving a drained tail undelivered).
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import (
    EXIT_DEGRADED,
    EXIT_FAILURE,
    EXIT_OK,
    EXIT_RUNTIME,
    EXIT_USAGE,
    DeadlockError,
    FaultPlanError,
    ReproError,
    TrapError,
)
from repro.eval.sweep import SweepError
from repro.ir.function import Module
from repro.ir.inline import inline_module
from repro.ir.lowering import lower_program
from repro.ir.optimize import optimize_module
from repro.ir.printer import format_function, format_module
from repro.lang import FrontendError, compile_source
from repro.machine.costs import cost_table, cost_table_names
from repro.pipeline.liveset import Strategy
from repro.pipeline.transform import PipelineError, pipeline_pps
from repro.runtime.equivalence import assert_equivalent, observe
from repro.runtime.scheduler import run_pipeline, run_sequential
from repro.runtime.state import MachineState
from repro.serve import ServeError


class CLIError(ReproError):
    """A usage error (bad flag value, unknown PPS): exit code 2."""


def _load_module(path: str, *, optimize: bool = True) -> Module:
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    module = lower_program(compile_source(source, path), path)
    inline_module(module)
    if optimize:
        optimize_module(module)
    return module


def _resolve_pps(module: Module, name: str | None) -> str:
    if name is not None:
        if name not in module.ppses:
            raise CLIError(f"no pps named {name!r} "
                           f"(available: {', '.join(module.ppses)})")
        return name
    if len(module.ppses) == 1:
        return next(iter(module.ppses))
    raise CLIError(f"choose one of the PPSes with --pps: "
                   f"{', '.join(module.ppses)}")


def _parse_feed(specs: list[str]) -> dict[str, list[int]]:
    feeds: dict[str, list[int]] = {}
    for spec in specs:
        if "=" not in spec:
            raise CLIError(f"--feed expects pipe=v1,v2,... (got {spec!r})")
        pipe, _, values = spec.partition("=")
        try:
            feeds[pipe] = [int(v, 0) for v in values.split(",") if v]
        except ValueError as exc:
            raise CLIError(f"bad feed value in {spec!r}: {exc}") from exc
    return feeds


def _load_fault_plan(spec: str):
    """Resolve ``--faults``: a builtin plan name or a JSON file path."""
    from repro.runtime.faults import FaultPlan, builtin_plans

    plans = builtin_plans()
    if spec in plans:
        return plans[spec]
    return FaultPlan.load(spec)


def _write_dead_letters(path: str, state) -> None:
    import json

    with open(path, "w", encoding="utf-8") as handle:
        json.dump([letter.as_dict() for letter in state.dead_letters],
                  handle, indent=2)
        handle.write("\n")


def _add_cache_flags(parser) -> None:
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="compilation-artifact cache directory "
                             "(default: $REPRO_CACHE_DIR or ~/.cache/repro)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the compilation-artifact cache")


def _open_cache(args):
    """The ``--cache-dir`` / ``--no-cache`` policy for one subcommand."""
    from repro.cache import resolve_cache

    return resolve_cache(args.cache_dir, args.no_cache)


def _add_partition_flags(parser) -> None:
    parser.add_argument("--no-warm-start", action="store_true",
                        help="solve every cut cold instead of seeding it "
                             "from the previous degree's preflow (the "
                             "cuts are identical either way)")
    parser.add_argument("--paranoid-verify", action="store_true",
                        help="make the verifier rebuild SSA/dependence/"
                             "liveness from scratch instead of sharing "
                             "the partitioner's analysis context")


# -- subcommands ------------------------------------------------------------


def cmd_check(args) -> int:
    module = _load_module(args.file)
    blocks = sum(len(p.blocks) for p in module.ppses.values())
    print(f"{args.file}: OK — {len(module.ppses)} pps, "
          f"{len(module.pipes)} pipes, {len(module.regions)} memories, "
          f"{blocks} basic blocks after inlining")
    return 0


def cmd_ir(args) -> int:
    module = _load_module(args.file, optimize=not args.no_optimize)
    if args.pps:
        print(format_function(module.pps(_resolve_pps(module, args.pps))))
    else:
        print(format_module(module))
    return 0


def cmd_pipeline(args) -> int:
    from repro.pipeline.supervisor import supervise_partition

    module = _load_module(args.file)
    pps_name = _resolve_pps(module, args.pps)
    outcome = supervise_partition(
        module, pps_name, args.degree,
        costs=cost_table(args.ring),
        epsilon=args.epsilon,
        strategy=Strategy(args.strategy),
        cache=_open_cache(args),
        warm_start=not args.no_warm_start,
        paranoid_verify=args.paranoid_verify,
    )
    if outcome.result is None:
        raise PipelineError(outcome.summary())
    result = outcome.result
    print(f"{pps_name}: {outcome.achieved_degree} stages over {args.ring} "
          f"rings (epsilon={args.epsilon}, {args.strategy} transmission)")
    weights = result.assignment.stage_weights(result.model)
    for stage in result.stages:
        layout = (result.layouts[stage.index - 1]
                  if stage.index <= len(result.layouts) else None)
        message = (f"-> {layout.words(result.strategy)} words"
                   if layout else "(last stage)")
        print(f"  stage {stage.index}: weight={weights[stage.index]:5d} "
              f"blocks={len(stage.local_blocks):3d} {message}")
    for diag in result.assignment.diagnostics:
        print(f"  cut {diag.stage}: target={diag.target:.1f} "
              f"got={diag.weight} cost={diag.cut_value} "
              f"balanced={diag.balanced}")
    if outcome.verdict is not None:
        print(f"  verify: {outcome.verdict.summary()}")
    if args.emit:
        for stage in result.stages:
            print()
            print(format_function(stage.function))
    if outcome.degraded:
        print(f"warning: {outcome.summary()}", file=sys.stderr)
        return EXIT_DEGRADED
    return EXIT_OK


def cmd_run(args) -> int:
    module = _load_module(args.file)
    pps_name = _resolve_pps(module, args.pps)
    feeds = _parse_feed(args.feed or [])

    plan = _load_fault_plan(args.faults) if args.faults else None
    if plan is not None:
        # Perturb the host-fed streams ONCE; every run below shares them.
        from repro.runtime.faults import FaultInjector

        stream_injector = FaultInjector(plan)
        feeds = {pipe: stream_injector.perturb(pipe, values)
                 for pipe, values in feeds.items()}

    def fresh() -> MachineState:
        state = MachineState(module)
        if plan is not None:
            from repro.runtime.faults import FaultInjector

            injector = FaultInjector(plan)
            injector.arm(state)
            injector.absorb_stream(stream_injector)
        for pipe, values in feeds.items():
            state.feed_pipe(pipe, values)
        return state

    def watchdog():
        from repro.runtime.watchdog import Watchdog

        if args.watchdog_quantum is None and plan is None:
            return None
        return Watchdog(args.watchdog_quantum)

    iterations = args.iterations
    sequential = fresh()
    seq_watchdog = watchdog()
    stats = run_sequential(module.pps(pps_name), sequential,
                           iterations=iterations, watchdog=seq_watchdog,
                           isolate_traps=args.isolate_traps)
    print(f"sequential: {stats.iterations - 1} iterations, "
          f"{stats.weight} weighted instructions")

    run_watchdog = seq_watchdog
    cache = _open_cache(args) if args.degree > 1 else None
    outcome = None
    if args.degree > 1:
        from repro.pipeline.supervisor import supervise_partition

        outcome = supervise_partition(module, pps_name, args.degree,
                                      cache=cache,
                                      warm_start=not args.no_warm_start,
                                      paranoid_verify=args.paranoid_verify)
        if outcome.result is None:
            raise PipelineError(outcome.summary())
        degree = outcome.achieved_degree
        pipelined = fresh()
        run_watchdog = watchdog()
        run = run_pipeline(outcome.result.stages, pipelined,
                           iterations=iterations,
                           watchdog=run_watchdog,
                           isolate_traps=args.isolate_traps)
        longest = max(s.weight for s in run.stats.values())
        if plan is None or plan.semantics_preserving():
            assert_equivalent(observe(sequential), observe(pipelined))
            print(f"pipelined x{degree}: longest stage {longest} "
                  f"weighted instructions; observationally equivalent ✔")
        else:
            print(f"pipelined x{degree}: longest stage {longest} "
                  f"weighted instructions; equivalence skipped "
                  f"(fault plan is not semantics-preserving)")
        state = pipelined
        run_stats = run.stats
    else:
        state = sequential
        run_stats = {pps_name: stats}

    for name, pipe in sorted(state.pipes.items()):
        if pipe.queue and ".xfer" not in name:
            print(f"pipe {name}: {list(pipe.queue)}")
    for tag, events in sorted(state.traces.items()):
        print(f"trace[{tag}]: {events}")
    if state.dead_letters:
        print(f"dead letters: {len(state.dead_letters)} quarantined "
              f"iterations")
        for letter in state.dead_letters:
            print(f"  {letter.stage} iter {letter.iteration} "
                  f"block {letter.last_block}: {letter.detail}")
    if args.dead_letters:
        _write_dead_letters(args.dead_letters, state)
        print(f"wrote {args.dead_letters}")
    if args.profile:
        from repro.obs import runtime_report

        print(runtime_report(run_stats, state, watchdog=run_watchdog,
                             cache=cache, partition=outcome).render())
    if outcome is not None and outcome.degraded:
        print(f"warning: {outcome.summary()}", file=sys.stderr)
        return EXIT_DEGRADED
    return EXIT_OK


def cmd_chaos(args) -> int:
    import json

    from repro.eval.chaos import chaos_differential
    from repro.runtime.faults import builtin_plans

    try:
        degrees = tuple(int(d) for d in args.degrees.split(","))
    except ValueError as exc:
        raise CLIError(f"bad --degrees {args.degrees!r}: {exc}") from exc
    cache = _open_cache(args)

    if args.sweep:
        return _chaos_sweep(args, degrees, cache)

    if args.plans:
        available = builtin_plans()
        plans = {}
        for spec in args.plans:
            plan = (available[spec] if spec in available
                    else _load_fault_plan(spec))
            plans[plan.name or spec] = plan
    else:
        plans = None

    letters: list = []
    report = chaos_differential(args.app, plans=plans, degrees=degrees,
                                packets=args.packets, seed=args.seed,
                                collect_letters=letters, cache=cache)
    print(report.render())
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report.as_dict(), handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.output}")
    if args.dead_letters:
        with open(args.dead_letters, "w", encoding="utf-8") as handle:
            json.dump(letters, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.dead_letters}")
    return 0 if report.ok else 1


#: Apps with a stream/feed split — the ones the chaos sweep can drive.
_CHAOS_SWEEP_APPS = ["ip_v4", "ip_v6", "ipv4", "rx"]


def _chaos_sweep(args, degrees: tuple, cache) -> int:
    """``repro chaos --sweep``: the multi-app differential, ``-j N``."""
    import json

    from repro.eval.sweep import chaos_tasks, run_sweep
    from repro.runtime.faults import builtin_plans

    apps = args.apps or list(_CHAOS_SWEEP_APPS)
    plans = None
    if args.plans:
        available = builtin_plans()
        unknown = [spec for spec in args.plans if spec not in available]
        if unknown:
            raise CLIError(
                f"--sweep accepts builtin plan names only "
                f"(unknown: {', '.join(unknown)}; "
                f"available: {', '.join(sorted(available))})")
        plans = tuple(args.plans)

    tasks = chaos_tasks(apps, degrees, packets=args.packets, seed=args.seed,
                        plans=plans,
                        cache_dir=str(cache.root) if cache else None)
    results = run_sweep(tasks, jobs=args.jobs, keep_going=args.keep_going)

    letters: list = []
    failures: list = []
    ok = True
    for result in results:
        if result.get("failed"):
            ok = False
            failures.append(result)
            print(f"[seed {result['seed']}] {result['task']}: FAILED — "
                  f"{result['error']}")
            continue
        print(f"[seed {result['seed']}] {result['rendered']}")
        ok = ok and result["ok"]
        for letter in result["dead_letters"]:
            letter = dict(letter)
            letter["app"] = result["app"]
            letters.append(letter)
    print(f"sweep: {len(results)} apps x degrees "
          f"{','.join(str(d) for d in degrees)} (-j {args.jobs}): "
          f"{'ok' if ok else 'FAIL'}")
    if failures:
        print(f"  {len(failures)} cells failed; reproduce with:")
        for failure in failures:
            print(f"    {failure['repro']}")

    if args.output:
        merged = {
            "sweep": True,
            "seed": args.seed,
            "jobs": args.jobs,
            "ok": ok,
            "apps": {result["app"]: result.get("report")
                     for result in results},
        }
        if failures:
            merged["failures"] = failures
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(merged, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.output}")
    if args.dead_letters:
        with open(args.dead_letters, "w", encoding="utf-8") as handle:
            json.dump(letters, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.dead_letters}")
    return 0 if ok else 1


def _load_serve_plan(spec: str):
    """Resolve ``serve --faults``: a serve plan name, a builtin chaos
    plan name, or a JSON file path."""
    from repro.runtime.faults import serve_plans

    plans = serve_plans()
    if spec in plans:
        return plans[spec]
    return _load_fault_plan(spec)


def cmd_serve(args) -> int:
    import json

    from repro.serve import ServePolicy, ServeRuntime

    plan = _load_serve_plan(args.faults) if args.faults else None
    policy = ServePolicy(max_restarts=args.max_restarts,
                         backoff_base=args.backoff,
                         hang_timeout=args.hang_timeout,
                         drain_grace=args.drain_grace)
    cache = _open_cache(args)
    runtime = ServeRuntime(args.app, shards=args.shards,
                           degree=args.degree, packets=args.packets,
                           seed=args.seed, batch=args.batch, plan=plan,
                           policy=policy, cache=cache,
                           journal_dir=args.journal_dir,
                           watchdog_quantum=args.watchdog_quantum,
                           verify=not args.no_verify)

    tracer = None
    if args.trace:
        from repro.obs import Tracer, tracing

        tracer = Tracer()
        with tracing(tracer):
            report = runtime.run(install_sigterm=True)
    else:
        report = runtime.run(install_sigterm=True)

    print(report.render())
    if args.profile:
        print(report.runtime_report(cache=cache).render())
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report.as_dict(), handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.output}")
    if tracer is not None:
        from repro.obs import emit_counter_events

        emit_counter_events(tracer, report.runtime_report(cache=cache))
        tracer.write(args.trace)
        print(f"wrote {args.trace}")
    return report.exit_code()


def cmd_trace(args) -> int:
    from repro.obs import Tracer, emit_counter_events, runtime_report, tracing

    plan = _load_fault_plan(args.faults) if args.faults else None
    watchdog = None
    if args.watchdog_quantum is not None or plan is not None:
        from repro.runtime.watchdog import Watchdog

        watchdog = Watchdog(args.watchdog_quantum)

    tracer = Tracer()
    with tracing(tracer):
        module = _load_module(args.file)
        pps_name = _resolve_pps(module, args.pps)
        feeds = _parse_feed(args.feed or [])
        state = MachineState(module)
        if plan is not None:
            from repro.runtime.faults import FaultInjector

            stream_injector = FaultInjector(plan)
            feeds = {pipe: stream_injector.perturb(pipe, values)
                     for pipe, values in feeds.items()}
            injector = FaultInjector(plan)
            injector.arm(state)
            injector.absorb_stream(stream_injector)
        for pipe, values in feeds.items():
            state.feed_pipe(pipe, values)
        cache = _open_cache(args) if args.degree > 1 else None
        if args.degree > 1:
            result = pipeline_pps(module, pps_name, args.degree, cache=cache)
            run = run_pipeline(result.stages, state,
                               iterations=args.iterations,
                               watchdog=watchdog,
                               isolate_traps=args.isolate_traps)
            run_stats = run.stats
        else:
            stats = run_sequential(module.pps(pps_name), state,
                                   iterations=args.iterations,
                                   watchdog=watchdog,
                                   isolate_traps=args.isolate_traps)
            run_stats = {pps_name: stats}
        report = runtime_report(run_stats, state, watchdog=watchdog,
                                cache=cache)
        emit_counter_events(tracer, report)
    tracer.write(args.output)
    spans = sum(1 for e in tracer.events if e.get("ph") == "X")
    instants = sum(1 for e in tracer.events if e.get("ph") == "i")
    counters = sum(1 for e in tracer.events if e.get("ph") == "C")
    print(f"{pps_name}: traced compile + run at degree {args.degree}")
    print(f"  {spans} spans, {instants} instants, {counters} counter samples")
    print(report.render())
    print(f"wrote {args.output} (load in chrome://tracing or Perfetto)")
    return 0


def cmd_figures(args) -> int:
    from repro.eval.experiments import (
        ExperimentConfig,
        figure19,
        figure20,
        figure21,
        figure22,
        headline_speedups,
    )
    from repro.eval.report import render_figure

    config = ExperimentConfig(packets=args.packets,
                              cache=_open_cache(args))
    print(render_figure("Figure 19: speedup, IPv4 forwarding PPSes",
                        figure19(config)))
    print()
    print(render_figure("Figure 20: speedup, IP forwarding PPSes",
                        figure20(config)))
    print()
    print(render_figure("Figure 21: live-set overhead, IPv4 forwarding",
                        figure21(config), value_format="{:6.3f}"))
    print()
    print(render_figure("Figure 22: live-set overhead, IP forwarding",
                        figure22(config), value_format="{:6.3f}"))
    print()
    print("Headline (9-stage pipeline):")
    for name, value in headline_speedups(config).items():
        print(f"  {name:8s} {value:5.2f}x")
    return 0


def cmd_bench(args) -> int:
    import json
    import os

    from repro.eval.metrics import bench_headline

    degrees = list(range(1, 5)) if args.quick else None
    result = bench_headline(packets=args.packets,
                            degrees=degrees,
                            measure_reference=not args.no_reference,
                            jobs=args.jobs,
                            cache=_open_cache(args),
                            keep_going=args.keep_going,
                            warm_start=not args.no_warm_start)
    parent = os.path.dirname(args.output)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")

    print(f"bench: packets={args.packets} "
          f"degrees={result['config']['degrees']} jobs={args.jobs}")
    print(f"  build     {result['build_seconds']:8.3f}s")
    print(f"  partition {result['partition_seconds']:8.3f}s")
    print(f"  compile   {result['compile_seconds']:8.3f}s")
    for figure, entry in result["figures"].items():
        rate = entry["instructions_per_second"]
        line = (f"  {figure}: {entry['wall_seconds']:.3f}s simulation, "
                f"{entry['simulated_instructions']} instructions "
                f"({rate / 1e6:.2f} Minstr/s)" if rate else
                f"  {figure}: {entry['wall_seconds']:.3f}s simulation")
        print(line)
        if "speedup_vs_reference" in entry:
            print(f"    reference interpreter: "
                  f"{entry['reference_wall_seconds']:.3f}s "
                  f"-> {entry['speedup_vs_reference']:.2f}x speedup")
    if args.profile and result.get("partition_breakdown"):
        print(_partition_profile_table(result["partition_breakdown"]))
    if "cache" in result:
        counters = result["cache"]
        print(f"  cache     {counters['hits']} hits, "
              f"{counters['misses']} misses, {counters['stores']} stores, "
              f"{counters['evictions']} evicted")
    if result.get("failures"):
        print(f"  {len(result['failures'])} sweep cells FAILED:")
        for failure in result["failures"]:
            print(f"    {failure['task']}: {failure['error']}")
    print(f"wrote {args.output}")
    return EXIT_FAILURE if result.get("failures") else EXIT_OK


def _partition_profile_table(breakdown: dict) -> str:
    """The ``repro bench --profile`` partition-phase table.

    One row per (app, degree): wall seconds, balanced-cut collapse
    iterations, push-relabel discharges, and how many of the degree's
    cuts started from a warm seed — enough to localize a partitioner
    regression without loading a Chrome trace.
    """
    lines = ["  partition phases (per app x degree):",
             "    app        D   seconds   cut_iters    pr_work  warm_hits"]
    for app in sorted(breakdown):
        for degree in sorted(breakdown[app], key=int):
            cell = breakdown[app][degree]
            lines.append(
                f"    {app:10s} {int(degree):d} {cell['seconds']:9.4f} "
                f"{cell['cut_iterations']:11d} {cell['pr_work']:10d} "
                f"{cell['warm_hits']:10d}")
    return "\n".join(lines)


def cmd_plan(args) -> int:
    """``repro plan``: pre-partition the (app x degree) matrix in parallel."""
    from repro.eval.experiments import FIGURE19_APPS, FIGURE20_APPS
    from repro.eval.sweep import plan_partitions

    try:
        degrees = [int(d) for d in args.degrees.split(",")]
    except ValueError as exc:
        raise CLIError(f"bad --degrees {args.degrees!r}: {exc}") from exc
    if args.apps:
        # --degrees is comma-separated, so accept "--apps rx,tx" as well
        # as the nargs-style "--apps rx tx".
        apps = [name for entry in args.apps
                for name in entry.split(",") if name]
    else:
        apps = sorted(set(FIGURE19_APPS) | set(FIGURE20_APPS))
    cache = _open_cache(args)
    if cache is None and args.jobs > 1:
        print("warning: --no-cache with -j > 1 plans in parallel but "
              "persists nothing", file=sys.stderr)
    results = plan_partitions(apps, degrees, packets=args.packets,
                              seed=args.seed, jobs=args.jobs, cache=cache,
                              warm_start=not args.no_warm_start,
                              keep_going=args.keep_going)
    failures = [entry for entry in results if entry.get("failed")]
    breakdown = {entry["app"]: entry["partition_breakdown"]
                 for entry in results if not entry.get("failed")}
    total = sum(cell["seconds"] for per_app in breakdown.values()
                for cell in per_app.values())
    print(f"plan: {len(breakdown)}/{len(results)} apps x degrees "
          f"{args.degrees} (-j {args.jobs}): "
          f"{total:.3f}s partition work"
          + ("" if cache is None else f", cached under {cache.root}"))
    print(_partition_profile_table(breakdown))
    for failure in failures:
        print(f"  {failure['task']}: FAILED — {failure['error']}",
              file=sys.stderr)
    return EXIT_FAILURE if failures else EXIT_OK


def cmd_explore(args) -> int:
    """``repro explore``: cost-aware design-space exploration."""
    import json
    import os

    from repro.eval.experiments import FIGURE19_APPS
    from repro.eval.explore import (
        ExploreError,
        SearchSpace,
        Weights,
        deterministic_report,
        explore,
        render_markdown,
        render_summary,
    )

    def ints(flag: str, text: str) -> tuple:
        try:
            return tuple(int(part) for part in text.split(",") if part)
        except ValueError as exc:
            raise CLIError(f"bad {flag} {text!r}: {exc}") from exc

    def floats(flag: str, text: str) -> tuple:
        try:
            return tuple(float(part) for part in text.split(",") if part)
        except ValueError as exc:
            raise CLIError(f"bad {flag} {text!r}: {exc}") from exc

    if args.apps:
        apps = tuple(name for entry in args.apps
                     for name in entry.split(",") if name)
    else:
        apps = tuple(FIGURE19_APPS)
    incremental = {"on": (True,), "off": (False,),
                   "both": (True, False)}[args.incremental]
    try:
        space = SearchSpace(
            apps=apps,
            degrees=ints("--degrees", args.degrees),
            rings=tuple(part for part in args.rings.split(",") if part),
            epsilons=floats("--epsilons", args.epsilons),
            incremental=incremental,
            max_block_instructions=ints("--max-block-instructions",
                                        args.max_block_instructions),
            packets=args.packets,
            seed=args.seed,
        ).validate()
        weights = (Weights.parse(args.weights) if args.weights
                   else Weights())
    except (ExploreError, ValueError) as exc:
        raise CLIError(str(exc)) from exc

    cache = _open_cache(args)
    report = explore(space, weights=weights, rule=args.pick_rule,
                     min_gain=args.min_gain, jobs=args.jobs, cache=cache,
                     warm_start=not args.no_warm_start,
                     keep_going=args.keep_going)

    os.makedirs(args.out, exist_ok=True)
    frontier = deterministic_report(report)
    frontier_path = os.path.join(args.out, "frontier.json")
    with open(frontier_path, "w", encoding="utf-8") as handle:
        json.dump(frontier, handle, indent=2, sort_keys=True)
        handle.write("\n")
    with open(os.path.join(args.out, "frontier.md"), "w",
              encoding="utf-8") as handle:
        handle.write(render_markdown(frontier))
        handle.write("\n")
    timings = {"timing": report.get("timing"),
               "cache": report.get("cache"),
               "jobs": args.jobs,
               "cells": space.cell_count()}
    with open(os.path.join(args.out, "timings.json"), "w",
              encoding="utf-8") as handle:
        json.dump(timings, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(render_summary(report))
    if args.auto_pick:
        for app, entry in report["apps"].items():
            pick = entry["pick"]
            if pick is None:
                print(f"pick {app}: none — no verified, non-degraded "
                      f"cell in the space")
                continue
            print(f"pick {app}: {pick['id']} "
                  f"(score {pick['score']:.4f}) — {pick['why']}")
            if pick.get("tie_break"):
                print(f"  tie-break: {pick['tie_break']}")
    print(f"wrote {frontier_path}")
    return EXIT_FAILURE if report.get("failures") else EXIT_OK


def cmd_fuzz(args) -> int:
    import json
    import os

    from repro.eval.fuzz import run_fuzz, self_test

    if args.self_test:
        outcome = self_test()
        for name, checks in sorted(outcome["caught"].items()):
            print(f"  defect {name}: caught by {', '.join(checks)}")
        if outcome["missed"]:
            print(f"fuzz self-test: MISSED defects: "
                  f"{', '.join(outcome['missed'])}")
            return EXIT_FAILURE
        print("fuzz self-test: every seeded defect caught")
        return EXIT_OK

    try:
        degrees = tuple(int(d) for d in args.degrees.split(","))
    except ValueError as exc:
        raise CLIError(f"bad --degrees {args.degrees!r}: {exc}") from exc
    report = run_fuzz(args.seeds, start_seed=args.start_seed,
                      degrees=degrees, packets=args.packets,
                      shrink=not args.no_shrink, jobs=args.jobs)
    print(report.render())
    if args.out and report.failures:
        os.makedirs(args.out, exist_ok=True)
        for failure in report.failures:
            stem = f"seed{failure.seed}_d{failure.degree}_{failure.phase}"
            with open(os.path.join(args.out, stem + ".ppc"), "w",
                      encoding="utf-8") as handle:
                handle.write(failure.artifact())
            with open(os.path.join(args.out, stem + ".json"), "w",
                      encoding="utf-8") as handle:
                json.dump(failure.as_dict(), handle, indent=2)
                handle.write("\n")
        print(f"wrote {len(report.failures)} failing programs to "
              f"{args.out}")
    return EXIT_OK if report.ok else EXIT_FAILURE


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Auto-pipelining compiler for packet processing "
                    "applications (PLDI 2005 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_check = sub.add_parser("check", help="compile and semantic-check")
    p_check.add_argument("file")
    p_check.set_defaults(func=cmd_check)

    p_ir = sub.add_parser("ir", help="dump the lowered, inlined IR")
    p_ir.add_argument("file")
    p_ir.add_argument("--pps")
    p_ir.add_argument("--no-optimize", action="store_true")
    p_ir.set_defaults(func=cmd_ir)

    p_pipe = sub.add_parser("pipeline", help="partition a PPS into stages")
    p_pipe.add_argument("file")
    p_pipe.add_argument("--pps")
    p_pipe.add_argument("-d", "--degree", type=int, default=2)
    p_pipe.add_argument("--ring", default="nn",
                        choices=cost_table_names(aliases=True))
    p_pipe.add_argument("--epsilon", type=float, default=1.0 / 16.0)
    p_pipe.add_argument("--strategy", default="packed",
                        choices=[s.value for s in Strategy])
    p_pipe.add_argument("--emit", action="store_true",
                        help="print the realized stage IR")
    _add_partition_flags(p_pipe)
    _add_cache_flags(p_pipe)
    p_pipe.set_defaults(func=cmd_pipeline)

    p_run = sub.add_parser("run", help="execute on the simulator")
    p_run.add_argument("file")
    p_run.add_argument("--pps")
    p_run.add_argument("-d", "--degree", type=int, default=1)
    p_run.add_argument("--iterations", type=int, default=10)
    p_run.add_argument("--feed", action="append",
                       help="pipe=v1,v2,... (repeatable)")
    p_run.add_argument("--profile", action="store_true",
                       help="print per-stage/per-pipe runtime counters")
    p_run.add_argument("--faults", metavar="PLAN",
                       help="fault-injection plan: builtin name or JSON file")
    p_run.add_argument("--watchdog-quantum", type=int, default=None,
                       metavar="N",
                       help="livelock check every N scheduler steps "
                            "(enables the deadlock watchdog)")
    p_run.add_argument("--isolate-traps", action="store_true",
                       help="quarantine trapped packets instead of aborting")
    p_run.add_argument("--dead-letters", metavar="FILE",
                       help="write quarantined-packet records as JSON")
    _add_partition_flags(p_run)
    _add_cache_flags(p_run)
    p_run.set_defaults(func=cmd_run)

    p_chaos = sub.add_parser(
        "chaos", help="run the chaos differential (faults + pipelining)")
    p_chaos.add_argument("--app", default="ipv4",
                         help="benchmark app (default: ipv4)")
    p_chaos.add_argument("--packets", type=int, default=40)
    p_chaos.add_argument("--seed", type=int, default=7)
    p_chaos.add_argument("--degrees", default="1,2,4",
                         help="comma-separated pipeline degrees")
    p_chaos.add_argument("--plans", nargs="*",
                         help="builtin plan names or JSON files "
                              "(default: all builtin plans)")
    p_chaos.add_argument("-o", "--output", default=None,
                         help="write the chaos report as JSON")
    p_chaos.add_argument("--dead-letters", metavar="FILE",
                         help="write all dead-letter records as JSON")
    p_chaos.add_argument("--sweep", action="store_true",
                         help="run the differential for several apps "
                              "(see --apps) instead of one")
    p_chaos.add_argument("--apps", nargs="*",
                         help="apps for --sweep (default: every "
                              "stream-driven app)")
    p_chaos.add_argument("-j", "--jobs", type=int, default=1,
                         help="worker processes for --sweep (default: 1)")
    p_chaos.add_argument("--keep-going", action="store_true",
                         help="with --sweep: record failed cells and "
                              "keep running instead of failing fast")
    _add_cache_flags(p_chaos)
    p_chaos.set_defaults(func=cmd_chaos)

    p_serve = sub.add_parser(
        "serve",
        help="fault-tolerant sharded serving (supervised worker pool)")
    p_serve.add_argument("--app", default="ipv4",
                         help="benchmark app (default: ipv4)")
    p_serve.add_argument("--shards", type=int, default=4,
                         help="worker processes / flow shards (default: 4)")
    p_serve.add_argument("-d", "--degree", type=int, default=1,
                         help="pipeline degree inside each worker")
    p_serve.add_argument("--packets", type=int, default=48)
    p_serve.add_argument("--seed", type=int, default=7)
    p_serve.add_argument("--batch", type=int, default=4,
                         help="packets per journaled batch (the commit "
                              "and replay unit)")
    p_serve.add_argument("--faults", metavar="PLAN",
                         help="fault plan with a workers section: serve "
                              "plan name (worker-kill, worker-storm), "
                              "builtin chaos plan name, or JSON file")
    p_serve.add_argument("--max-restarts", type=int, default=3,
                         help="per-shard restart budget before the "
                              "circuit breaker re-shards (default: 3)")
    p_serve.add_argument("--backoff", type=float, default=0.05,
                         help="first restart delay, seconds; doubles per "
                              "restart (default: 0.05)")
    p_serve.add_argument("--hang-timeout", type=float, default=10.0,
                         help="seconds a live worker may stay silent "
                              "before a hang kill (default: 10)")
    p_serve.add_argument("--drain-grace", type=float, default=2.0,
                         help="seconds a SIGTERM drain waits before "
                              "killing stragglers (default: 2)")
    p_serve.add_argument("--journal-dir", metavar="DIR", default=None,
                         help="persist per-shard journals as JSONL "
                              "under DIR")
    p_serve.add_argument("--watchdog-quantum", type=int, default=200_000,
                         metavar="N",
                         help="worker livelock check every N scheduler "
                              "steps (default: 200000)")
    p_serve.add_argument("--no-verify", action="store_true",
                         help="skip the sequential-oracle differential "
                              "after the run")
    p_serve.add_argument("--profile", action="store_true",
                         help="print per-shard runtime counters")
    p_serve.add_argument("--trace", metavar="FILE", default=None,
                         help="write a Chrome trace of shard lifecycle "
                              "events to FILE")
    p_serve.add_argument("-o", "--output", default=None,
                         help="write the serve report as JSON")
    _add_cache_flags(p_serve)
    p_serve.set_defaults(func=cmd_serve)

    p_trace = sub.add_parser(
        "trace", help="emit a Chrome-trace JSON of compile + run")
    p_trace.add_argument("file")
    p_trace.add_argument("--pps")
    p_trace.add_argument("-d", "--degree", type=int, default=2)
    p_trace.add_argument("--iterations", type=int, default=10)
    p_trace.add_argument("--feed", action="append",
                         help="pipe=v1,v2,... (repeatable)")
    p_trace.add_argument("--faults", metavar="PLAN",
                         help="fault-injection plan: builtin name or "
                              "JSON file")
    p_trace.add_argument("--watchdog-quantum", type=int, default=None,
                         metavar="N",
                         help="livelock check every N scheduler steps "
                              "(enables the deadlock watchdog)")
    p_trace.add_argument("--isolate-traps", action="store_true",
                         help="quarantine trapped packets instead of "
                              "aborting")
    p_trace.add_argument("-o", "--output", default="trace.json")
    _add_cache_flags(p_trace)
    p_trace.set_defaults(func=cmd_trace)

    p_fig = sub.add_parser("figures", help="regenerate the paper's figures")
    p_fig.add_argument("--packets", type=int, default=60)
    _add_cache_flags(p_fig)
    p_fig.set_defaults(func=cmd_figures)

    p_bench = sub.add_parser(
        "bench", help="run the performance regression harness")
    p_bench.add_argument("--packets", type=int, default=60)
    p_bench.add_argument("-o", "--output",
                         default="bench-out/BENCH_headline.json",
                         help="report path (default: "
                              "bench-out/BENCH_headline.json; the "
                              "committed baseline stays untouched)")
    p_bench.add_argument("--quick", action="store_true",
                         help="small degree sweep (1-4) for smoke runs")
    p_bench.add_argument("--no-reference", action="store_true",
                         help="skip the reference-interpreter 'before' run")
    p_bench.add_argument("-j", "--jobs", type=int, default=1,
                         help="fan (figure, app) sweep cells over N worker "
                              "processes")
    p_bench.add_argument("--keep-going", action="store_true",
                         help="with -j: record failed sweep cells and "
                              "keep running instead of failing fast")
    p_bench.add_argument("--no-warm-start", action="store_true",
                         help="solve every cut cold instead of seeding it "
                              "from related earlier solves")
    p_bench.add_argument("--profile", action="store_true",
                         help="print the partition-phase table (per app x "
                              "degree: seconds, cut iterations, pr work, "
                              "warm-start hits)")
    _add_cache_flags(p_bench)
    p_bench.set_defaults(func=cmd_bench)

    p_plan = sub.add_parser(
        "plan", help="pre-partition the benchmark matrix into the cache")
    p_plan.add_argument("--apps", nargs="*",
                        help="apps to plan (default: the Figure 19+20 "
                             "suite)")
    p_plan.add_argument("--degrees", default="1,2,3,4,5,6,7,8,9",
                        help="comma-separated pipeline degrees")
    p_plan.add_argument("--packets", type=int, default=60)
    p_plan.add_argument("--seed", type=int, default=7)
    p_plan.add_argument("-j", "--jobs", type=int, default=1,
                        help="fan apps over N worker processes; each "
                             "worker keeps its app's whole degree row so "
                             "warm starts still apply")
    p_plan.add_argument("--no-warm-start", action="store_true",
                        help="solve every cut cold instead of seeding it "
                             "from related earlier solves")
    p_plan.add_argument("--keep-going", action="store_true",
                        help="record failed apps and keep planning "
                             "instead of failing fast")
    _add_cache_flags(p_plan)
    p_plan.set_defaults(func=cmd_plan)

    p_explore = sub.add_parser(
        "explore",
        help="cost-aware design-space exploration with a Pareto frontier")
    p_explore.add_argument("--apps", nargs="*",
                           help="apps to explore (default: the Figure 19 "
                                "suite); comma or space separated")
    p_explore.add_argument("--degrees", default="1,2,3,4,5,6,7,8,9",
                           help="comma-separated pipeline degrees "
                                "(include 1: the sequential floor)")
    p_explore.add_argument("--rings", default="nn-ring",
                           help="comma-separated cost-table names "
                                "(see repro.machine.costs registry, e.g. "
                                "nn-ring,scratch-ring)")
    p_explore.add_argument("--epsilons", default="0.0625",
                           help="comma-separated balance-slack values")
    p_explore.add_argument("--incremental", default="on",
                           choices=["on", "off", "both"],
                           help="incremental-restart partitioner knob")
    p_explore.add_argument("--max-block-instructions", default="12",
                           help="comma-separated block-split thresholds")
    p_explore.add_argument("--packets", type=int, default=60)
    p_explore.add_argument("--seed", type=int, default=7)
    p_explore.add_argument("--weights", default=None,
                           help="objective weights, e.g. "
                                "speedup=1,words=0.005,stages=0.01")
    p_explore.add_argument("--pick-rule", default="marginal",
                           choices=["marginal", "score"],
                           help="marginal: climb the degree ladder until "
                                "the weighted score plateaus (the paper's "
                                "'levels off' knee); score: plain argmax")
    p_explore.add_argument("--min-gain", type=float, default=0.0,
                           help="marginal rule: minimum score gain to "
                                "keep climbing (default: 0)")
    p_explore.add_argument("--auto-pick", action="store_true",
                           help="print the explained per-app pick "
                                "(the pick is always in frontier.json)")
    p_explore.add_argument("-o", "--out", default="explore-out",
                           help="output directory (frontier.json, "
                                "frontier.md, timings.json)")
    p_explore.add_argument("-j", "--jobs", type=int, default=1,
                           help="fan (app, knob-combo) rows over N worker "
                                "processes; frontier.json is identical "
                                "at any -j level")
    p_explore.add_argument("--keep-going", action="store_true",
                           help="record failed cells and keep exploring "
                                "instead of failing fast")
    p_explore.add_argument("--no-warm-start", action="store_true",
                           help="solve every cut cold instead of seeding "
                                "it from related earlier solves")
    _add_cache_flags(p_explore)
    p_explore.set_defaults(func=cmd_explore)

    p_fuzz = sub.add_parser(
        "fuzz", help="fuzz the partitioner with generated programs")
    p_fuzz.add_argument("--seeds", type=int, default=50,
                        help="number of generated programs (default: 50)")
    p_fuzz.add_argument("--start-seed", type=int, default=0)
    p_fuzz.add_argument("--degrees", default="2,3,4",
                        help="comma-separated pipeline degrees, applied "
                             "round-robin per seed")
    p_fuzz.add_argument("--packets", type=int, default=24,
                        help="packets per differential run (default: 24)")
    p_fuzz.add_argument("--no-shrink", action="store_true",
                        help="report failing programs unshrunk")
    p_fuzz.add_argument("-j", "--jobs", type=int, default=1,
                        help="fan fuzz cases over N worker processes "
                             "(identical report at any -j level)")
    p_fuzz.add_argument("--self-test", action="store_true",
                        help="seed known partition defects instead; the "
                             "verifier must catch every one")
    p_fuzz.add_argument("--out", metavar="DIR", default=None,
                        help="write failing programs (shrunk) and their "
                             "metadata into DIR")
    p_fuzz.set_defaults(func=cmd_fuzz)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (CLIError, FaultPlanError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except (FrontendError, PipelineError, SweepError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_FAILURE
    except DeadlockError as exc:
        print(f"error: {exc}", file=sys.stderr)
        for name, key in sorted(exc.parked.items()):
            marker = "!" if name in exc.offenders else " "
            print(f"  {marker} {name} parked on {key!r}", file=sys.stderr)
        return EXIT_RUNTIME
    except TrapError as exc:
        print(f"error: trap: {exc}", file=sys.stderr)
        return EXIT_RUNTIME
    except ServeError as exc:
        print(f"error: serve: {exc}", file=sys.stderr)
        return EXIT_RUNTIME
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_FAILURE


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

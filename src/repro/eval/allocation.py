"""Whole-application engine allocation (paper §2.2).

"The auto-partitioning C compiler automatically explores how (e.g.,
pipelining vs. multiprocessing) each PPS is paralleled and how many PEs
... each PPS is mapped onto, and selects one compilation result based on
a static evaluation of the performance and the performance requirements
of the application."

The paper scopes that exploration out of its §3 algorithm; this module
implements a straightforward instance of it on top of the measured
per-PPS curves: a greedy marginal-gain allocator that hands engines, one
at a time, to whichever PPS currently bottlenecks the application, trying
both parallelization modes (pipelining and synchronized replication) for
every PPS at every engine count.

The application's throughput cost is the *maximum* per-packet cost over
its PPSes (a chain is as fast as its slowest member), so giving an engine
to anything but the bottleneck is wasted — which is exactly what greedy
marginal gain captures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.suite import build_app
from repro.eval.metrics import (
    SequentialMeasurement,
    measure_pipeline,
    measure_replication,
    measure_sequential,
)


@dataclass
class PpsOption:
    """One (mode, engines) configuration of one PPS."""

    pps: str
    mode: str          # "pipeline" | "replicate"
    engines: int
    cost: float        # per-packet cost of the bottleneck engine

    @property
    def label(self) -> str:
        if self.engines == 1:
            return "sequential"
        return f"{self.mode} x{self.engines}"


@dataclass
class AllocationResult:
    """Outcome of a whole-application engine allocation."""

    total_engines: int
    chosen: dict[str, PpsOption]
    application_cost: float          # max per-packet cost over PPSes
    sequential_cost: float           # max per-packet cost at 1 engine each
    history: list[tuple[str, int, float]] = field(default_factory=list)

    @property
    def speedup(self) -> float:
        if not self.application_cost:
            return float("inf")
        return self.sequential_cost / self.application_cost

    def engines_used(self) -> int:
        return sum(option.engines for option in self.chosen.values())


class CostCurves:
    """Lazily measured per-PPS cost curves over both modes."""

    def __init__(self, pps_names: list[str], *, packets: int = 48,
                 max_engines_per_pps: int = 10):
        self.packets = packets
        self.max_engines = max_engines_per_pps
        self._apps = {name: build_app(name, packets=packets)
                      for name in pps_names}
        self._baselines: dict[str, SequentialMeasurement] = {}
        self._cache: dict[tuple[str, str, int], float] = {}

    def baseline(self, pps: str) -> SequentialMeasurement:
        if pps not in self._baselines:
            self._baselines[pps] = measure_sequential(self._apps[pps])
        return self._baselines[pps]

    def cost(self, pps: str, mode: str, engines: int) -> float:
        """Per-packet cost of the bottleneck engine for one option."""
        key = (pps, mode, engines)
        if key in self._cache:
            return self._cache[key]
        baseline = self.baseline(pps)
        if engines == 1:
            value = baseline.per_packet
        elif mode == "pipeline":
            value = measure_pipeline(self._apps[pps], engines,
                                     baseline=baseline).longest_stage
        elif mode == "replicate":
            value = measure_replication(self._apps[pps], engines,
                                        baseline=baseline).effective
        else:
            raise ValueError(f"unknown mode {mode!r}")
        self._cache[key] = value
        return value

    def best_option(self, pps: str, engines: int) -> PpsOption:
        """The cheaper of the two modes at a given engine count."""
        if engines == 1:
            return PpsOption(pps, "sequential", 1, self.cost(pps, "pipeline", 1))
        candidates = [
            PpsOption(pps, mode, engines, self.cost(pps, mode, engines))
            for mode in ("pipeline", "replicate")
        ]
        return min(candidates, key=lambda option: option.cost)


def allocate_engines(pps_names: list[str], total_engines: int, *,
                     curves: CostCurves | None = None,
                     packets: int = 48) -> AllocationResult:
    """Greedy marginal-gain allocation of ``total_engines`` engines.

    Every PPS starts with one engine; each remaining engine goes to the
    PPS whose upgrade most reduces the application bottleneck (ties to
    the currently slowest PPS).
    """
    if total_engines < len(pps_names):
        raise ValueError(
            f"need at least {len(pps_names)} engines for {len(pps_names)} PPSes"
        )
    curves = curves or CostCurves(pps_names, packets=packets)
    engines = {name: 1 for name in pps_names}
    chosen = {name: curves.best_option(name, 1) for name in pps_names}
    sequential_cost = max(option.cost for option in chosen.values())
    history: list[tuple[str, int, float]] = []

    for _ in range(total_engines - len(pps_names)):
        bottleneck_cost = max(option.cost for option in chosen.values())
        best_name = None
        best_option = None
        best_new_cost = bottleneck_cost
        for name in pps_names:
            if engines[name] >= curves.max_engines:
                continue
            upgraded = curves.best_option(name, engines[name] + 1)
            trial = dict(chosen)
            trial[name] = upgraded
            new_cost = max(option.cost for option in trial.values())
            if new_cost < best_new_cost - 1e-9:
                best_new_cost = new_cost
                best_name = name
                best_option = upgraded
        if best_name is None:
            break  # no upgrade reduces the bottleneck: stop spending
        engines[best_name] += 1
        chosen[best_name] = best_option
        history.append((best_name, engines[best_name], best_new_cost))

    return AllocationResult(
        total_engines=total_engines,
        chosen=chosen,
        application_cost=max(option.cost for option in chosen.values()),
        sequential_cost=sequential_cost,
        history=history,
    )

"""Parallel sweep runner: fan (app, degree) measurements over processes.

Fig-19-style sweeps re-partition the same four NPF apps over and over;
each (app, D) cell is independent, deterministic given its seed, and
dominated by the balanced-cut search — an embarrassingly parallel
workload.  :func:`run_sweep` executes :class:`SweepTask` cells on a
``concurrent.futures.ProcessPoolExecutor`` (``-j N`` on the CLI) with:

* **deterministic merge** — results are returned in *task order* (the
  builders emit tasks ordered by (app, D)) no matter which worker
  finishes first, so ``-j 4`` output is byte-identical to ``-j 1``
  modulo the explicitly nondeterministic ``timing`` / ``cache`` fields
  (strip them with :func:`deterministic_view`);
* **per-task seed threading** — :func:`derive_seed` gives every cell a
  stable seed derived from the base seed and the cell identity, so
  chaos sweeps stay reproducible under any parallelism;
* **structured failure** — a worker exception or a hard worker crash
  (OOM-killed, segfault) surfaces as :class:`SweepError` (a
  :class:`~repro.errors.ReproError`, CLI exit 1), never a hang;
* **shared artifact cache** — workers open the same on-disk
  :class:`~repro.cache.CompileCache` (atomic writes make racing safe),
  so repeated cells cost one partition across the whole sweep.
"""

from __future__ import annotations

import hashlib
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace

from repro.errors import ReproError


class SweepError(ReproError):
    """A sweep task failed or its worker process died.

    The message always carries the failing task's derived seed and its
    full argument tuple plus a copy-paste reproduction command, so any
    sweep failure reproduces inline with a one-liner.  ``task`` holds
    the :class:`SweepTask` itself when one is attributable.
    """

    def __init__(self, message: str, *, task: "SweepTask | None" = None):
        super().__init__(message)
        self.task = task


@dataclass(frozen=True)
class SweepTask:
    """One self-contained sweep cell, picklable for worker dispatch."""

    kind: str                       # "bench" | "chaos" | "partition" | "explore"
    app: str
    degrees: tuple                  # pipeline degrees to measure
    packets: int
    seed: int
    reference: bool = False         # bench: use the reference interpreter
    plans: tuple | None = None      # chaos: builtin plan names (None = all)
    cache_dir: str | None = None    # shared CompileCache root
    label: str | None = None        # grouping tag (e.g. figure name)
    warm_start: bool = True         # bench/partition: cross-degree seeding
    ring: str | None = None         # explore: cost-table name
    epsilon: float | None = None    # explore: balance slack knob
    incremental: bool | None = None  # explore: incremental-restart knob
    max_block_instructions: int | None = None  # explore: block-split knob
    keep_going: bool = False        # explore: record failed degree cells
    #                                 instead of failing the whole row

    def describe(self) -> str:
        tag = f" [{self.label}]" if self.label else ""
        ref = " (reference)" if self.reference else ""
        knobs = ""
        if self.kind == "explore":
            knobs = (f" ring={self.ring} eps={self.epsilon:g} "
                     f"inc={'on' if self.incremental else 'off'} "
                     f"mbi={self.max_block_instructions}")
        return (f"{self.kind} {self.app} D={','.join(map(str, self.degrees))}"
                f"{ref}{knobs}{tag}")

    def repro_command(self) -> str:
        """A copy-paste one-liner that re-runs this exact cell inline."""
        degrees = ",".join(map(str, self.degrees))
        if self.kind == "chaos":
            plans = (" --plans " + " ".join(self.plans)
                     if self.plans else "")
            return (f"repro chaos --app {self.app} --degrees {degrees} "
                    f"--packets {self.packets} --seed {self.seed}{plans}")
        if self.kind == "partition":
            warm = "" if self.warm_start else " --no-warm-start"
            return (f"repro bench --packets {self.packets} -j 1{warm}  "
                    f"# plan cell: app={self.app} degrees={degrees}")
        if self.kind == "explore":
            warm = "" if self.warm_start else " --no-warm-start"
            inc = "on" if self.incremental else "off"
            return (f"repro explore --apps {self.app} --degrees {degrees} "
                    f"--rings {self.ring} --epsilons {self.epsilon:g} "
                    f"--incremental {inc} "
                    f"--max-block-instructions {self.max_block_instructions} "
                    f"--packets {self.packets} --seed {self.seed} -j 1{warm}")
        return (f"repro bench --packets {self.packets} -j 1  "
                f"# cell: app={self.app} degrees={degrees} "
                f"seed={self.seed}")

    def detail(self) -> str:
        """The failure context every SweepError message must carry:
        the derived seed and the full argument tuple."""
        return (f"seed={self.seed} args={self!r}; "
                f"reproduce: {self.repro_command()}")


def derive_seed(base: int, *parts) -> int:
    """A stable per-task seed from the base seed and the task identity.

    Pure function of its arguments (no global RNG state), so a sweep is
    reproducible regardless of worker scheduling or ``-j`` level.
    """
    text = ":".join([str(base), *(str(part) for part in parts)])
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


# -- task builders ----------------------------------------------------------


def bench_tasks(apps: list[str], degrees: list[int], *, packets: int,
                seed: int, cache_dir: str | None = None,
                reference: bool = False,
                label: str | None = None,
                warm_start: bool = True) -> list[SweepTask]:
    """Bench cells ordered by app (each cell covers all its degrees)."""
    return [SweepTask(kind="bench", app=app, degrees=tuple(degrees),
                      packets=packets, seed=seed, reference=reference,
                      cache_dir=cache_dir, label=label,
                      warm_start=warm_start)
            for app in apps]


def partition_tasks(apps: list[str], degrees, *, packets: int, seed: int,
                    cache_dir: str | None = None,
                    warm_start: bool = True,
                    label: str | None = None) -> list[SweepTask]:
    """Partition-plan cells: one per app, covering its whole degree row.

    A cell keeps all of an app's degrees together so the worker shares
    one :class:`~repro.analysis.context.AnalysisContext` and one warm
    -start cache across the row — the cross-degree seeding the planner
    exists to exploit; parallelism comes from fanning the *apps*.
    """
    return [SweepTask(kind="partition", app=app, degrees=tuple(degrees),
                      packets=packets, seed=seed, cache_dir=cache_dir,
                      warm_start=warm_start, label=label)
            for app in apps]


def explore_tasks(space, *, cache_dir: str | None = None,
                  warm_start: bool = True,
                  keep_going: bool = False) -> list[SweepTask]:
    """Explore cells: one task per (app, knob combo), covering the whole
    degree row.

    Like :func:`partition_tasks`, a task keeps all of a combo's degrees
    together so the worker shares one analysis context and one baseline
    measurement across the row; parallelism fans the (app, combo) pairs.
    ``space`` is a :class:`repro.eval.explore.SearchSpace`.
    """
    tasks = []
    for app in space.apps:
        for ring, epsilon, incremental, mbi in space.combos():
            tasks.append(SweepTask(
                kind="explore", app=app, degrees=tuple(space.degrees),
                packets=space.packets, seed=space.seed,
                cache_dir=cache_dir, warm_start=warm_start,
                ring=ring, epsilon=epsilon, incremental=incremental,
                max_block_instructions=mbi, keep_going=keep_going))
    return tasks


def chaos_tasks(apps: list[str], degrees: tuple, *, packets: int, seed: int,
                plans: tuple | None = None,
                cache_dir: str | None = None) -> list[SweepTask]:
    """Chaos cells ordered by app, each with its own derived seed."""
    return [SweepTask(kind="chaos", app=app, degrees=tuple(degrees),
                      packets=packets, seed=derive_seed(seed, "chaos", app),
                      plans=plans, cache_dir=cache_dir)
            for app in sorted(apps)]


# -- workers ----------------------------------------------------------------


def _open_cache(task: SweepTask):
    if task.cache_dir is None:
        return None
    from repro.cache import CompileCache

    return CompileCache(task.cache_dir)


def _execute(task: SweepTask) -> dict:
    """Run one cell; module-level so the pool can pickle it by name."""
    if task.kind == "bench":
        return _execute_bench(task)
    if task.kind == "chaos":
        return _execute_chaos(task)
    if task.kind == "partition":
        return _execute_partition(task)
    if task.kind == "explore":
        return _execute_explore(task)
    raise SweepError(f"unknown sweep task kind {task.kind!r}")


def _execute_explore(task: SweepTask) -> dict:
    """Evaluate one (app, knob combo) row of a design-space exploration.

    Every degree of the row goes through the *supervised* pipeline —
    partition, independent verification, graceful degradation — and is
    then simulated with the observational-equivalence check on.  The
    returned record carries one cell dict per degree; the nondeterministic
    numbers (partition wall seconds) live under each cell's ``timing``
    key so the frontier artifact can strip them.
    """
    from time import perf_counter

    from repro.analysis.context import AnalysisContext
    from repro.apps.suite import build_app
    from repro.eval.metrics import (
        make_profiler,
        measure_pipeline,
        measure_sequential,
    )
    from repro.machine.costs import cost_table
    from repro.pipeline.supervisor import supervise_partition

    cache = _open_cache(task)
    before = dict(cache.counters()) if cache is not None else {}
    costs = cost_table(task.ring)
    start = perf_counter()
    app = build_app(task.app, packets=task.packets, seed=task.seed)
    build_seconds = perf_counter() - start

    baseline = measure_sequential(app)
    profiler = make_profiler(app)
    context = AnalysisContext(app.module, app.pps_name,
                              task.max_block_instructions)

    def cell_id(degree: int) -> str:
        inc = "inc" if task.incremental else "noinc"
        return (f"{task.app}/{costs.name}/d{degree}/e{task.epsilon:g}/"
                f"{inc}/b{task.max_block_instructions}")

    def config(degree: int) -> dict:
        return {
            "degree": degree,
            "ring": costs.name,
            "epsilon": task.epsilon,
            "incremental": task.incremental,
            "max_block_instructions": task.max_block_instructions,
        }

    cells = []
    cell_failures = []
    partition_total = 0.0
    for degree in sorted(set(task.degrees)):
        if degree <= 1:
            # The sequential "pipeline": always valid, nothing transmitted.
            cells.append({
                "id": cell_id(1),
                "app": task.app,
                "config": config(1),
                "verified": True,
                "degraded": False,
                "achieved_degree": 1,
                "metrics": {
                    "speedup": 1.0,
                    "transmitted_words": 0,
                    "stages": 1,
                    "longest_stage": round(baseline.per_packet, 4),
                },
                "timing": {"partition_seconds": 0.0},
            })
            continue
        start = perf_counter()
        try:
            outcome = supervise_partition(
                app.module, app.pps_name, degree,
                costs=costs, epsilon=task.epsilon,
                incremental=task.incremental,
                max_block_instructions=task.max_block_instructions,
                profiler=profiler, cache=cache, context=context,
                warm_start=task.warm_start)
            partition_seconds = perf_counter() - start
            partition_total += partition_seconds
            cell = {
                "id": cell_id(degree),
                "app": task.app,
                "config": config(degree),
                "verified": outcome.ok,
                "degraded": outcome.degraded,
                "achieved_degree": outcome.achieved_degree,
            }
            if not outcome.ok:
                cell["error"] = outcome.summary()
                cell["metrics"] = None
            else:
                achieved = outcome.achieved_degree
                measured = measure_pipeline(app, achieved,
                                            baseline=baseline,
                                            costs=costs,
                                            transform=outcome.result)
                cell["metrics"] = {
                    "speedup": round(measured.speedup, 4),
                    "transmitted_words": sum(measured.message_words),
                    "stages": achieved,
                    "longest_stage": round(measured.longest_stage, 4),
                }
            if len(outcome.attempts) > 1:
                cell["attempts"] = len(outcome.attempts)
            cell["timing"] = {
                "partition_seconds": round(partition_seconds, 4)}
            cells.append(cell)
        except Exception as exc:
            # A single grid cell crashing (partitioner bug, measurement
            # fault) must not take out the row's other degrees when the
            # sweep runs keep-going; record it with a degree-exact repro
            # one-liner instead.
            if not task.keep_going:
                raise
            cell_task = replace(task, degrees=(degree,))
            if isinstance(exc, SweepError):
                error = exc
            else:
                error = SweepError(
                    f"explore cell {cell_id(degree)} failed: {exc}; "
                    f"{cell_task.detail()}", task=cell_task)
            record = _failure_record(cell_task, error)
            record["cell"] = cell_id(degree)
            cell_failures.append(record)

    counters = dict(cache.counters()) if cache is not None else None
    if counters:
        counters = {key: counters.get(key, 0) - before.get(key, 0)
                    for key in counters}
    return {
        "kind": "explore",
        "app": task.app,
        "label": task.label,
        "seed": task.seed,
        "ring": costs.name,
        "epsilon": task.epsilon,
        "incremental": task.incremental,
        "max_block_instructions": task.max_block_instructions,
        "degrees": sorted(set(task.degrees)),
        "warm_start": task.warm_start,
        "cells": cells,
        "cell_failures": cell_failures,
        "timing": {
            "build_seconds": round(build_seconds, 4),
            "partition_seconds": round(partition_total, 4),
        },
        "cache": counters,
    }


def _execute_partition(task: SweepTask) -> dict:
    """Partition one app's whole degree row (the planner worker).

    The results land in the shared compile cache, so a following bench /
    fuzz / run phase gets pure cache hits; the returned record carries
    the per-degree breakdown for profiling output.
    """
    from time import perf_counter

    from repro.apps.suite import build_app
    from repro.eval.metrics import partition_app

    cache = _open_cache(task)
    before = dict(cache.counters()) if cache is not None else {}
    start = perf_counter()
    app = build_app(task.app, packets=task.packets, seed=task.seed)
    build_seconds = perf_counter() - start

    start = perf_counter()
    _, breakdown = partition_app(app, task.degrees, cache=cache,
                                 warm_start=task.warm_start)
    partition_seconds = perf_counter() - start
    counters = dict(cache.counters()) if cache is not None else None
    if counters:
        counters = {key: counters.get(key, 0) - before.get(key, 0)
                    for key in counters}
    return {
        "kind": "partition",
        "app": task.app,
        "label": task.label,
        "seed": task.seed,
        "degrees": sorted(task.degrees),
        "warm_start": task.warm_start,
        "partition_breakdown": breakdown,
        "timing": {
            "build_seconds": build_seconds,
            "partition_seconds": partition_seconds,
        },
        "cache": counters,
    }


def _execute_bench(task: SweepTask) -> dict:
    from time import perf_counter

    from repro.apps.suite import build_app
    from repro.eval.metrics import (
        measure_pipeline,
        measure_sequential,
        partition_app,
    )
    from repro.runtime.compile import compile_function
    from repro.runtime.mode import reference_mode

    cache = _open_cache(task)
    start = perf_counter()
    app = build_app(task.app, packets=task.packets, seed=task.seed)
    build_seconds = perf_counter() - start

    start = perf_counter()
    transforms, breakdown = partition_app(app, task.degrees, cache=cache,
                                          warm_start=task.warm_start)
    partition_seconds = perf_counter() - start

    start = perf_counter()
    for transform in transforms.values():
        for stage in transform.stages:
            compile_function(stage.function)
    compile_function(app.module.pps(app.pps_name))
    compile_seconds = perf_counter() - start

    instructions = 0
    series: dict[int, float] = {}
    start = perf_counter()
    with reference_mode(task.reference):
        baseline = measure_sequential(app)
        instructions += baseline.total_instructions
        for degree in sorted(task.degrees):
            if degree == 1:
                series[1] = 1.0
                continue
            measured = measure_pipeline(app, degree, baseline=baseline,
                                        transform=transforms[degree])
            instructions += measured.total_instructions
            series[degree] = round(measured.speedup, 4)
    simulate_seconds = perf_counter() - start

    return {
        "kind": "bench",
        "app": task.app,
        "label": task.label,
        "reference": task.reference,
        "seed": task.seed,
        "degrees": sorted(task.degrees),
        "speedup_by_degree": series,
        "partition_breakdown": breakdown,
        "simulated_instructions": instructions,
        "timing": {
            "build_seconds": build_seconds,
            "partition_seconds": partition_seconds,
            "compile_seconds": compile_seconds,
            "simulate_seconds": simulate_seconds,
        },
        "cache": cache.counters() if cache is not None else None,
    }


def _execute_chaos(task: SweepTask) -> dict:
    from time import perf_counter

    from repro.eval.chaos import chaos_differential
    from repro.runtime.faults import builtin_plans

    cache = _open_cache(task)
    plans = None
    if task.plans is not None:
        available = builtin_plans()
        unknown = [name for name in task.plans if name not in available]
        if unknown:
            raise SweepError(f"unknown builtin fault plans: "
                             f"{', '.join(unknown)}")
        plans = {name: available[name] for name in task.plans}
    letters: list = []
    start = perf_counter()
    report = chaos_differential(task.app, plans=plans,
                                degrees=tuple(task.degrees),
                                packets=task.packets, seed=task.seed,
                                collect_letters=letters, cache=cache)
    wall = perf_counter() - start
    return {
        "kind": "chaos",
        "app": task.app,
        "seed": task.seed,
        "ok": report.ok,
        "report": report.as_dict(),
        "dead_letters": letters,
        "rendered": report.render(),
        "timing": {"wall_seconds": wall},
        "cache": cache.counters() if cache is not None else None,
    }


# -- the partition planner --------------------------------------------------


def plan_partitions(apps: list[str], degrees, *, packets: int, seed: int,
                    jobs: int = 1, cache=None, warm_start: bool = True,
                    keep_going: bool = False) -> list[dict]:
    """Partition the whole (app x degree) matrix up front, in parallel.

    Fans one :func:`partition_tasks` cell per app over the sweep runner
    (``jobs`` worker processes) with all results stored through the
    shared on-disk compile ``cache`` — after planning, a cold ``repro
    bench`` / ``repro fuzz`` / ``repro run`` gets pure cache hits for
    every partition it needs.  Within each cell the worker shares one
    analysis context and warm-start cache across the degree row, so the
    parallel plan produces partitions bit-identical to a serial sweep
    (and to cold, unseeded solves).

    Returns the task-order list of worker records (app, per-degree
    breakdown, timings, cache counter deltas).  ``cache`` may be ``None``
    (the plan then only returns the breakdown — nothing persists), but
    that defeats the point when ``jobs > 1``.
    """
    cache_dir = None
    if cache is not None:
        cache_dir = str(getattr(cache, "root", cache))
    tasks = partition_tasks(sorted(set(apps)), degrees, packets=packets,
                            seed=seed, cache_dir=cache_dir,
                            warm_start=warm_start)
    results = run_sweep(tasks, jobs=jobs, keep_going=keep_going)
    if cache is not None:
        for entry in results:
            if entry.get("cache"):
                cache.merge_counters(entry["cache"])
    return results


# -- the runner -------------------------------------------------------------


def run_sweep(tasks, *, jobs: int = 1, worker=None,
              keep_going: bool = False) -> list[dict]:
    """Execute every task; results come back in *task order*.

    ``jobs <= 1`` runs inline through the exact same worker function, so
    the parallel path cannot diverge from the sequential one.  ``worker``
    is a test seam (must be a picklable module-level callable).

    ``keep_going=False`` (the default) fails fast: the first failing
    task raises :class:`SweepError` and sibling results are discarded.
    ``keep_going=True`` records each failure as a placeholder dict
    (``{"failed": True, "ok": False, "error", "task", "seed",
    "repro"}``) in its task-order slot and keeps running, so one bad
    cell no longer costs the rest of the sweep.
    """
    tasks = list(tasks)
    worker = worker or _execute
    if jobs <= 1:
        return [_guarded(worker, task, keep_going=keep_going)
                for task in tasks]

    results: list = [None] * len(tasks)
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = {pool.submit(worker, task): index
                   for index, task in enumerate(tasks)}
        for future in as_completed(futures):
            index = futures[future]
            task = tasks[index]
            try:
                results[index] = future.result()
            except BrokenProcessPool as exc:
                error = SweepError(
                    f"sweep worker process died while running "
                    f"{task.describe()} (killed or crashed); "
                    f"{task.detail()}", task=task)
                if keep_going:
                    results[index] = _failure_record(task, error)
                    continue
                # Cancel what has not started; the pool is dead anyway.
                for pending in futures:
                    pending.cancel()
                raise error from exc
            except Exception as exc:
                error = (exc if isinstance(exc, SweepError)
                         else SweepError(
                             f"sweep task {task.describe()} failed: "
                             f"{exc}; {task.detail()}", task=task))
                if keep_going:
                    results[index] = _failure_record(task, error)
                    continue
                raise error from exc
    return results


def _failure_record(task: SweepTask, error: Exception) -> dict:
    """The task-order placeholder a ``keep_going`` sweep returns for a
    failed cell."""
    return {
        "kind": task.kind,
        "app": task.app,
        "label": task.label,
        "seed": task.seed,
        "ok": False,
        "failed": True,
        "error": str(error),
        "task": task.describe(),
        "repro": task.repro_command(),
    }


def _guarded(worker, task: SweepTask, *, keep_going: bool = False) -> dict:
    try:
        return worker(task)
    except SweepError as exc:
        if keep_going:
            return _failure_record(task, exc)
        raise
    except ReproError as exc:
        if keep_going:
            return _failure_record(task, exc)
        raise
    except Exception as exc:
        error = SweepError(f"sweep task {task.describe()} failed: {exc}; "
                           f"{task.detail()}", task=task)
        if keep_going:
            return _failure_record(task, error)
        raise error from exc


def deterministic_view(results: list[dict]) -> list[dict]:
    """Results with the nondeterministic fields (wall-clock timing,
    cache hit patterns, the per-degree partition breakdown — it embeds
    wall seconds) stripped — the byte-identical part of a sweep."""
    return [{key: value for key, value in result.items()
             if key not in ("timing", "cache", "partition_breakdown")}
            for result in results]

"""Performance metrics (paper §4).

The paper evaluates each PPS "in terms of the number of instructions
required for processing a minimum sized packet", determined by "the
longest pipeline stage"; the live-set overhead is "the ratio, in the
longest pipeline stage, of the number of instructions for live set
transmission ... to the number of instruction counts for packet
processing".

We measure both dynamically: the interpreter executes the sequential PPS
and every pipelined stage on the same min-size traffic, accumulating
machine-model instruction weights (and, separately, the weight spent in
pipe-in/pipe-out pseudo-ops).  Every pipelined run is checked
observationally equivalent to the sequential run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.cfg import find_pps_loop
from repro.apps.suite import AppInstance
from repro.ir.function import Function
from repro.machine.costs import NN_RING, CostModel
from repro.pipeline.liveset import Strategy
from repro.pipeline.transform import PipelineResult, pipeline_pps
from repro.runtime.equivalence import Observation, assert_equivalent, observe
from repro.runtime.interp import Interpreter
from repro.runtime.scheduler import run_group, run_pipeline, run_sequential
from repro.runtime.state import MachineState


@dataclass
class SequentialMeasurement:
    """Baseline run of the unpartitioned PPS."""

    app: str
    iterations: int
    total_weight: int
    per_packet: float
    observation: Observation = field(repr=False, default=None)
    total_instructions: int = 0


@dataclass
class PipelineMeasurement:
    """One pipelined configuration of one PPS."""

    app: str
    degree: int
    per_stage: list[float]              # per-packet weight of each stage
    per_stage_transmission: list[float]
    longest_stage: float                # the paper's performance number
    speedup: float                      # perf(1) / perf(d)
    overhead_ratio: float               # transmission / processing, longest stage
    message_words: list[int]            # cut message sizes (incl. control word)
    balanced: list[bool]
    equivalent: bool = True
    total_instructions: int = 0         # raw simulated instructions, all stages

    @property
    def bottleneck_stage(self) -> int:
        return max(range(len(self.per_stage)),
                   key=lambda i: self.per_stage[i]) + 1


def measure_sequential(app: AppInstance) -> SequentialMeasurement:
    """Run the unpartitioned PPS and record per-packet instruction weight."""
    state, iterations = app.fresh_state()
    stats = run_sequential(app.module.pps(app.pps_name), state,
                           iterations=iterations)
    return SequentialMeasurement(
        app=app.name,
        iterations=iterations,
        total_weight=stats.weight,
        per_packet=stats.weight / max(1, iterations),
        observation=observe(state),
        total_instructions=stats.instructions,
    )


def make_profiler(app: AppInstance):
    """A profiler for :func:`repro.pipeline.transform.pipeline_pps`.

    Runs the normalized PPS once per traffic class of the app and returns
    per-class block execution frequencies (executions per iteration), or
    ``None`` when the app has a single class (static weights suffice, as
    in the paper).
    """
    setups = app.profile_setups
    if not setups or len(setups) < 2:
        return None

    def profiler(function: Function) -> list[dict[str, float]]:
        profiles = []
        for setup in setups:
            state = MachineState(app.module)
            iterations = setup(state)
            loop = find_pps_loop(function)
            interp = Interpreter(function, state, loop_start=loop.header,
                                 max_iterations=iterations)
            run_group({f"profile:{function.name}": interp})
            profiles.append({
                name: count / max(1, iterations)
                for name, count in interp.stats.block_counts.items()
            })
        return profiles

    return profiler


def partition_app(app: AppInstance, degrees, *, cache=None,
                  warm_start: bool = True,
                  costs: CostModel = NN_RING,
                  strategy: Strategy = Strategy.PACKED,
                  epsilon: float = 1.0 / 16.0,
                  incremental: bool = True,
                  interference: str = "exact"):
    """Partition ``app`` at every degree > 1, sharing analyses and warm
    starts across the sweep.

    One :class:`~repro.analysis.context.AnalysisContext` (normalize /
    profile / SSA / dependence computed once) and, unless ``warm_start``
    is off, one :class:`~repro.flownet.warmstart.WarmStartCache` (cut
    *i* of degree D seeds cut *i* of degree D+1) serve the whole degree
    sweep.  Returns ``(transforms, breakdown)`` where ``transforms``
    maps degree -> :class:`PipelineResult` and ``breakdown`` maps
    ``str(degree)`` to per-degree phase stats: wall ``seconds``,
    ``cut_iterations`` (balanced-cut collapse steps), ``pr_work``
    (push-relabel discharges), and ``warm_hits`` (cuts whose initial
    solve was seeded).  Cache hits report the stats recorded when the
    artifact was first solved.
    """
    from time import perf_counter

    from repro.analysis.context import AnalysisContext
    from repro.flownet.warmstart import WarmStartCache

    profiler = make_profiler(app)
    context = AnalysisContext(app.module, app.pps_name)
    warm = WarmStartCache() if warm_start else None
    transforms: dict[int, PipelineResult] = {}
    breakdown: dict[str, dict] = {}
    for degree in sorted(set(degrees)):
        if degree <= 1:
            continue
        start = perf_counter()
        result = pipeline_pps(app.module, app.pps_name, degree,
                              costs=costs, strategy=strategy,
                              epsilon=epsilon, incremental=incremental,
                              interference=interference,
                              profiler=profiler, cache=cache,
                              context=context, warm=warm)
        seconds = perf_counter() - start
        diagnostics = result.assignment.diagnostics
        transforms[degree] = result
        breakdown[str(degree)] = {
            "seconds": round(seconds, 4),
            "cut_iterations": sum(diag.iterations for diag in diagnostics),
            "pr_work": sum(diag.pr_work for diag in diagnostics),
            "warm_hits": sum(1 for diag in diagnostics if diag.warm_hit),
        }
    return transforms, breakdown


def measure_pipeline(app: AppInstance, degree: int, *,
                     baseline: SequentialMeasurement | None = None,
                     costs: CostModel = NN_RING,
                     strategy: Strategy = Strategy.PACKED,
                     epsilon: float = 1.0 / 16.0,
                     incremental: bool = True,
                     interference: str = "exact",
                     check_equivalence: bool = True,
                     use_profiles: bool = True,
                     transform: PipelineResult | None = None,
                     cache=None) -> PipelineMeasurement:
    """Pipeline ``app`` at ``degree`` and measure the paper's metrics.

    ``use_profiles`` activates profile-dimensioned balancing for apps that
    declare multiple traffic classes (the combined IP PPS).  ``cache``
    (a :class:`repro.cache.CompileCache`) memoizes the partition when
    ``transform`` is not supplied.
    """
    if baseline is None:
        baseline = measure_sequential(app)
    if degree == 1:
        return PipelineMeasurement(
            app=app.name, degree=1,
            per_stage=[baseline.per_packet],
            per_stage_transmission=[0.0],
            longest_stage=baseline.per_packet,
            speedup=1.0, overhead_ratio=0.0,
            message_words=[], balanced=[True],
        )
    if transform is None:
        profiler = make_profiler(app) if use_profiles else None
        transform = pipeline_pps(app.module, app.pps_name, degree,
                                 costs=costs, strategy=strategy,
                                 epsilon=epsilon, incremental=incremental,
                                 interference=interference,
                                 profiler=profiler, cache=cache)
    state, iterations = app.fresh_state()
    run = run_pipeline(transform.stages, state, iterations=iterations)

    equivalent = True
    if check_equivalence:
        assert_equivalent(baseline.observation, observe(state))

    per_stage = []
    per_stage_tx = []
    for stage in transform.stages:
        stats = run.stats[stage.function.name]
        per_stage.append(stats.weight / max(1, iterations))
        per_stage_tx.append(stats.transmission_weight / max(1, iterations))
    longest_index = max(range(len(per_stage)), key=lambda i: per_stage[i])
    longest = per_stage[longest_index]
    transmission = per_stage_tx[longest_index]
    processing = longest - transmission
    return PipelineMeasurement(
        app=app.name,
        degree=degree,
        per_stage=per_stage,
        per_stage_transmission=per_stage_tx,
        longest_stage=longest,
        speedup=baseline.per_packet / longest if longest else float("inf"),
        overhead_ratio=(transmission / processing) if processing else 0.0,
        message_words=[layout.words(strategy) for layout in transform.layouts],
        balanced=[diag.balanced for diag in transform.assignment.diagnostics],
        equivalent=equivalent,
        total_instructions=sum(run.stats[stage.function.name].instructions
                               for stage in transform.stages),
    )


@dataclass
class ReplicationMeasurement:
    """One replicated (multiprocessing) configuration of one PPS.

    The throughput model (paper §5 tradeoff): per-packet work per engine
    is ``total weight / ways / packets``; a serially ordered resource
    caps throughput at its critical-section size per packet — the longest
    of the two is the performance number, mirroring how the longest
    pipeline stage is the pipelining number.
    """

    app: str
    ways: int
    per_engine: float               # per-packet weight per engine
    serial_bound: float             # heaviest critical section per packet
    effective: float                # max of the two: the throughput cost
    speedup: float                  # perf(1) / effective
    sync_overhead: float            # extra weight per packet vs sequential
    serial_sections: dict = field(default_factory=dict)
    equivalent: bool = True


def measure_replication(app: AppInstance, ways: int, *,
                        baseline: SequentialMeasurement | None = None,
                        check_equivalence: bool = True) -> ReplicationMeasurement:
    """Replicate ``app`` ``ways`` times and measure the §5 tradeoff."""
    from repro.pipeline.replicate import replicate_pps
    from repro.runtime.scheduler import run_replicas

    if baseline is None:
        baseline = measure_sequential(app)
    replication = replicate_pps(app.module, app.pps_name, ways)
    state, iterations = app.fresh_state()
    run = run_replicas(replication.replicas, state, iterations=iterations)
    if check_equivalence:
        assert_equivalent(baseline.observation, observe(state))

    total_weight = sum(stats.weight for stats in run.stats.values())
    per_engine = total_weight / ways / max(1, iterations)
    sections: dict = {}
    for stats in run.stats.values():
        for resource, weight in stats.serial_weight.items():
            sections[resource] = sections.get(resource, 0) + weight
    serial_bound = max(
        (weight / max(1, iterations) for weight in sections.values()),
        default=0.0,
    )
    effective = max(per_engine, serial_bound)
    return ReplicationMeasurement(
        app=app.name,
        ways=ways,
        per_engine=per_engine,
        serial_bound=serial_bound,
        effective=effective,
        speedup=baseline.per_packet / effective if effective else float("inf"),
        sync_overhead=(total_weight / max(1, iterations)) - baseline.per_packet,
        serial_sections={resource: weight / max(1, iterations)
                         for resource, weight in sections.items()},
    )


# -- performance regression harness ------------------------------------------


def bench_headline(*, packets: int = 60, seed: int = 7,
                   degrees: list[int] | None = None,
                   measure_reference: bool = True,
                   jobs: int = 1, cache=None,
                   keep_going: bool = False,
                   warm_start: bool = True) -> dict:
    """Run the headline performance benchmark (``repro bench``).

    Times the Figure 19/20 degree sweeps end to end, separating the three
    phases so the interpreter speedup is not diluted by unchanged work:

    * **build** — compiling the PPS-C applications to IR,
    * **partition** — profiling, min-cut pipelining and stage realization
      for every (app, degree) pair,
    * **simulation** — the figure sweeps themselves, executed on the
      compiled-dispatch interpreter + event-driven scheduler, and (for
      Figure 19, unless ``measure_reference`` is off) once more on the
      reference interpreter + polling scheduler to record the "before"
      number the speedup is judged against.

    ``cache`` (a :class:`repro.cache.CompileCache`) memoizes every
    partition by content address; its hit/miss counters land in the
    result's ``cache`` section.  ``jobs > 1`` fans the per-(figure, app)
    cells over a process pool (:mod:`repro.eval.sweep`); phase seconds
    then aggregate worker CPU time while ``phase_seconds["sweep"]`` holds
    the parallel region's wall clock.  The speedup series are
    deterministic and identical under any ``jobs`` level.  ``keep_going``
    (parallel path only) records failed cells under a ``failures`` key
    instead of aborting the whole sweep on the first
    :class:`~repro.eval.sweep.SweepError`.

    Returns a JSON-serializable dict; ``repro bench`` writes it to
    ``bench-out/BENCH_headline.json``.
    """
    import gc
    import sys
    from time import perf_counter

    from repro.apps.suite import build_app
    from repro.eval.experiments import FIGURE19_APPS, FIGURE20_APPS
    from repro.obs import PhaseTimer
    from repro.runtime.compile import clear_cache, compile_function
    from repro.runtime.mode import reference_mode

    degrees = sorted(set(degrees)) if degrees else list(range(1, 10))
    figure_apps = {"figure19": list(FIGURE19_APPS),
                   "figure20": list(FIGURE20_APPS)}

    if jobs > 1:
        return _bench_headline_parallel(
            packets=packets, seed=seed, degrees=degrees,
            measure_reference=measure_reference, jobs=jobs, cache=cache,
            figure_apps=figure_apps, keep_going=keep_going,
            warm_start=warm_start)

    # Phase wall clocks; each phase also shows up as a span when the bench
    # runs under an active repro.obs tracer.
    phases = PhaseTimer()

    with phases.phase("build", packets=packets):
        apps = {}
        for names in figure_apps.values():
            for name in names:
                if name not in apps:
                    apps[name] = build_app(name, packets=packets, seed=seed)

    with phases.phase("partition", degrees=len(degrees)):
        transforms = {}
        partition_breakdown: dict[str, dict] = {}
        for name, app in apps.items():
            per_app, breakdown = partition_app(app, degrees, cache=cache,
                                               warm_start=warm_start)
            for degree, transform in per_app.items():
                transforms[name, degree] = transform
            partition_breakdown[name] = breakdown

    # Threaded-code compilation, measured cold (it is otherwise amortized
    # into the first simulation of each function).
    clear_cache()
    with phases.phase("compile"):
        for app in apps.values():
            compile_function(app.module.pps(app.pps_name))
        for transform in transforms.values():
            for stage in transform.stages:
                compile_function(stage.function)

    def sweep(names: list[str], reference: bool, repeats: int = 3):
        instructions = 0
        series: dict[str, dict[int, float]] = {}
        walls = []
        # Drain the partition phase's pending garbage and keep the
        # collector out of the timed region (both paths get the same
        # treatment, as pytest-benchmark's disable_gc does). The runs
        # are deterministic, so following timeit we repeat and keep the
        # fastest pass: the minimum is the least noise-contaminated.
        gc.collect()
        gc.disable()
        try:
            with reference_mode(reference):
                for attempt in range(repeats):
                    instructions = 0
                    series = {}
                    start = perf_counter()
                    for name in names:
                        app = apps[name]
                        baseline = measure_sequential(app)
                        instructions += baseline.total_instructions
                        app_series = {1: 1.0}
                        for degree in degrees:
                            if degree == 1:
                                continue
                            measured = measure_pipeline(
                                app, degree, baseline=baseline,
                                transform=transforms[name, degree])
                            instructions += measured.total_instructions
                            app_series[degree] = round(measured.speedup, 4)
                        series[name] = app_series
                    walls.append(perf_counter() - start)
        finally:
            gc.enable()
        return min(walls), instructions, series

    figures: dict[str, dict] = {}
    for figure, names in figure_apps.items():
        with phases.phase(f"simulate:{figure}", apps=len(names)):
            wall, instructions, series = sweep(names, False)
        entry = {
            "apps": names,
            "wall_seconds": round(wall, 4),
            "simulated_instructions": instructions,
            "instructions_per_second": (round(instructions / wall)
                                        if wall else None),
            "speedup_by_degree": series,
        }
        if measure_reference and figure == "figure19":
            with phases.phase("simulate:reference", apps=len(names)):
                ref_wall, _, _ = sweep(names, True)
            entry["reference_wall_seconds"] = round(ref_wall, 4)
            entry["speedup_vs_reference"] = (round(ref_wall / wall, 2)
                                             if wall else None)
        figures[figure] = entry

    top = max(degrees)
    headline = {}
    for figure, entry in figures.items():
        for name, app_series in entry["speedup_by_degree"].items():
            if top in app_series:
                headline[name] = app_series[top]

    result = {
        "config": {
            "packets": packets,
            "seed": seed,
            "degrees": degrees,
            "jobs": jobs,
            "warm_start": warm_start,
            "python": sys.version.split()[0],
        },
        "build_seconds": round(phases["build"], 4),
        "partition_seconds": round(phases["partition"], 4),
        "compile_seconds": round(phases["compile"], 4),
        "phase_seconds": {name: round(value, 4)
                          for name, value in sorted(phases.seconds.items())},
        "partition_breakdown": partition_breakdown,
        "figures": figures,
        f"headline_speedup_degree{top}": headline,
    }
    if cache is not None:
        result["cache"] = cache.counters()
    return result


def _bench_headline_parallel(*, packets: int, seed: int, degrees: list[int],
                             measure_reference: bool, jobs: int, cache,
                             figure_apps: dict,
                             keep_going: bool = False,
                             warm_start: bool = True) -> dict:
    """The ``jobs > 1`` bench path: one sweep task per (figure, app)."""
    import sys

    from repro.eval.sweep import bench_tasks, run_sweep
    from repro.obs import PhaseTimer

    cache_dir = str(cache.root) if cache is not None else None
    tasks = []
    for figure, names in figure_apps.items():
        tasks.extend(bench_tasks(names, degrees, packets=packets, seed=seed,
                                 cache_dir=cache_dir, label=figure,
                                 warm_start=warm_start))
    if measure_reference:
        tasks.extend(bench_tasks(figure_apps["figure19"], degrees,
                                 packets=packets, seed=seed,
                                 cache_dir=cache_dir, reference=True,
                                 label="figure19:reference",
                                 warm_start=warm_start))

    phases = PhaseTimer()
    with phases.phase("sweep", jobs=jobs, tasks=len(tasks)):
        results = run_sweep(tasks, jobs=jobs, keep_going=keep_going)

    # keep_going sweeps carry failure placeholders; aggregate only the
    # cells that completed, and report the rest under "failures".
    failures = [entry for entry in results if entry.get("failed")]
    completed = [entry for entry in results if not entry.get("failed")]

    by_label: dict[str, list[dict]] = {}
    for entry in completed:
        by_label.setdefault(entry["label"], []).append(entry)

    def aggregate(entries: list[dict], phase: str) -> float:
        return sum(entry["timing"][phase] for entry in entries)

    figures: dict[str, dict] = {}
    for figure, names in figure_apps.items():
        entries = by_label.get(figure, [])
        wall = aggregate(entries, "simulate_seconds")
        instructions = sum(entry["simulated_instructions"]
                           for entry in entries)
        entry = {
            "apps": names,
            "wall_seconds": round(wall, 4),
            "simulated_instructions": instructions,
            "instructions_per_second": (round(instructions / wall)
                                        if wall else None),
            "speedup_by_degree": {result["app"]: result["speedup_by_degree"]
                                  for result in entries},
        }
        if measure_reference and figure == "figure19":
            reference = by_label.get("figure19:reference", [])
            ref_wall = aggregate(reference, "simulate_seconds")
            entry["reference_wall_seconds"] = round(ref_wall, 4)
            entry["speedup_vs_reference"] = (round(ref_wall / wall, 2)
                                             if wall else None)
        figures[figure] = entry

    top = max(degrees)
    headline = {}
    for figure, entry in figures.items():
        for name, app_series in entry["speedup_by_degree"].items():
            if top in app_series:
                headline[name] = app_series[top]

    if cache is not None:
        for entry in completed:
            if entry.get("cache"):
                cache.merge_counters(entry["cache"])

    # Per-app partition breakdowns come back from the workers; the
    # reference cells re-partition from the shared cache, so prefer the
    # non-reference cell's breakdown for each app.
    partition_breakdown: dict[str, dict] = {}
    for entry in completed:
        if entry.get("partition_breakdown") is None:
            continue
        if entry["reference"] and entry["app"] in partition_breakdown:
            continue
        partition_breakdown[entry["app"]] = entry["partition_breakdown"]

    result = {
        "config": {
            "packets": packets,
            "seed": seed,
            "degrees": degrees,
            "jobs": jobs,
            "warm_start": warm_start,
            "python": sys.version.split()[0],
        },
        "partition_breakdown": partition_breakdown,
        "build_seconds": round(aggregate(completed, "build_seconds"), 4),
        "partition_seconds": round(aggregate(completed, "partition_seconds"),
                                   4),
        "compile_seconds": round(aggregate(completed, "compile_seconds"), 4),
        "phase_seconds": {
            "sweep": round(phases["sweep"], 4),
            "build": round(aggregate(completed, "build_seconds"), 4),
            "partition": round(aggregate(completed, "partition_seconds"), 4),
            "compile": round(aggregate(completed, "compile_seconds"), 4),
            "simulate": round(aggregate(completed, "simulate_seconds"), 4),
        },
        "figures": figures,
        f"headline_speedup_degree{top}": headline,
    }
    if failures:
        result["failures"] = failures
    if cache is not None:
        result["cache"] = cache.counters()
    return result

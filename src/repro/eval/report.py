"""Plain-text rendering of regenerated figures."""

from __future__ import annotations


def format_series_table(series: dict[str, dict[int, float]], *,
                        value_format: str = "{:6.2f}") -> str:
    """Render ``{series: {degree: value}}`` as an aligned text table."""
    degrees = sorted({degree for values in series.values() for degree in values})
    name_width = max((len(name) for name in series), default=4)
    header = " " * name_width + " | " + " ".join(f"d={d:<5d}" for d in degrees)
    rows = [header, "-" * len(header)]
    for name, values in series.items():
        cells = []
        for degree in degrees:
            if degree in values:
                cells.append(value_format.format(values[degree]))
            else:
                cells.append(" " * 6)
        rows.append(f"{name:<{name_width}} | " + " ".join(f"{c:<7s}" for c in cells))
    return "\n".join(rows)


def render_figure(title: str, series: dict[str, dict[int, float]], *,
                  value_format: str = "{:6.2f}") -> str:
    """A titled text block for one regenerated figure."""
    return f"{title}\n{format_series_table(series, value_format=value_format)}"

"""Chaos differential: pipelining must stay faithful under faults.

The paper's contract — the auto-partitioned pipeline is observationally
equivalent to the sequential PPS — is only worth much if it survives the
conditions real packet pipelines live in: loss, reordering, stalls, and
slow stages.  :func:`chaos_differential` checks exactly that:

1. a seeded :class:`~repro.runtime.faults.FaultPlan` perturbs the input
   stream **once**, host-side;
2. the sequential PPS runs on the perturbed stream → the oracle;
3. every requested pipeline degree runs on the *same* perturbed stream,
   with a fresh injector arming the plan's pipe stalls / stage slowdowns
   and the deadlock watchdog on;
4. for semantics-preserving plans (no corruption, no injected traps) the
   surviving packets' observables must be bit-identical to the oracle;
   for trap plans the check is instead that the run drains and every
   quarantined iteration left a dead letter.

Scheduling-only faults (stalls, slowdowns) may reorder the interleaving
arbitrarily — equivalence must hold regardless, which is what makes this
a genuine robustness check rather than a replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.suite import build_app
from repro.pipeline.transform import pipeline_pps
from repro.runtime.equivalence import compare, observe
from repro.runtime.faults import FaultInjector, FaultPlan, builtin_plans
from repro.runtime.scheduler import run_pipeline, run_sequential
from repro.runtime.watchdog import Watchdog

DEFAULT_DEGREES = (1, 2, 4)


@dataclass
class DegreeOutcome:
    """One pipelined run of one plan."""

    degree: int
    mismatches: list = field(default_factory=list)
    dead_letters: int = 0
    traps: int = 0
    ok: bool = True

    def as_dict(self) -> dict:
        return {
            "degree": self.degree,
            "mismatches": [str(mismatch) for mismatch in self.mismatches],
            "dead_letters": self.dead_letters,
            "traps": self.traps,
            "ok": self.ok,
        }


@dataclass
class PlanOutcome:
    """All degrees of one fault plan."""

    plan: str
    seed: int
    semantics_preserving: bool
    fed: int = 0              # stream length after perturbation
    faults: dict = field(default_factory=dict)
    degrees: list[DegreeOutcome] = field(default_factory=list)
    baseline_dead_letters: int = 0

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.degrees)

    def as_dict(self) -> dict:
        return {
            "plan": self.plan,
            "seed": self.seed,
            "semantics_preserving": self.semantics_preserving,
            "fed": self.fed,
            "faults": dict(self.faults),
            "baseline_dead_letters": self.baseline_dead_letters,
            "degrees": [outcome.as_dict() for outcome in self.degrees],
            "ok": self.ok,
        }


@dataclass
class ChaosReport:
    """The full chaos differential result."""

    app: str
    packets: int
    outcomes: list[PlanOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    def as_dict(self) -> dict:
        return {
            "app": self.app,
            "packets": self.packets,
            "ok": self.ok,
            "plans": [outcome.as_dict() for outcome in self.outcomes],
        }

    def render(self) -> str:
        lines = [f"chaos differential: app {self.app}, "
                 f"{self.packets} packets"]
        for outcome in self.outcomes:
            flavour = ("differential" if outcome.semantics_preserving
                       else "trap isolation")
            lines.append(
                f"  plan {outcome.plan} (seed {outcome.seed}, {flavour}): "
                f"{outcome.fed} packets fed")
            for degree in outcome.degrees:
                verdict = "ok" if degree.ok else "FAIL"
                extra = ""
                if degree.traps:
                    extra = (f", {degree.traps} traps quarantined, "
                             f"{degree.dead_letters} dead letters")
                if degree.mismatches:
                    extra += f", {len(degree.mismatches)} mismatches"
                lines.append(f"    degree {degree.degree}: {verdict}{extra}")
        lines.append(f"  overall: {'ok' if self.ok else 'FAIL'}")
        return "\n".join(lines)


def chaos_differential(app_name: str = "ipv4", *,
                       plans: dict[str, FaultPlan] | None = None,
                       degrees: tuple = DEFAULT_DEGREES,
                       packets: int = 40, seed: int = 7,
                       watchdog_quantum: int | None = 200_000,
                       collect_letters: list | None = None,
                       cache=None) -> ChaosReport:
    """Run the chaos differential for ``app_name`` across fault plans.

    ``collect_letters``, when given, receives every dead-letter record
    (as dicts, tagged with plan and degree) — the CI job uploads them as
    an artifact on failure.  ``cache`` (a
    :class:`repro.cache.CompileCache`) memoizes the per-degree partition,
    which every plan otherwise recomputes.
    """
    if plans is None:
        plans = builtin_plans()
    app = build_app(app_name, packets=packets, seed=seed)
    if app.stream is None:
        raise ValueError(f"app {app_name!r} cannot drive the chaos "
                         f"differential (no stream/feed split)")
    report = ChaosReport(app=app_name, packets=packets)
    for plan_name, plan in plans.items():
        report.outcomes.append(_run_plan(
            app, plan_name, plan, degrees=degrees,
            watchdog_quantum=watchdog_quantum,
            collect_letters=collect_letters, cache=cache))
    return report


def _run_plan(app, plan_name: str, plan: FaultPlan, *, degrees: tuple,
              watchdog_quantum: int | None,
              collect_letters: list | None, cache=None) -> PlanOutcome:
    # Perturb the stream ONCE; every run below shares it.
    stream_injector = FaultInjector(plan)
    stream = stream_injector.perturb(app.pps_name, app.stream())
    outcome = PlanOutcome(plan=plan_name, seed=plan.seed,
                          semantics_preserving=plan.semantics_preserving(),
                          fed=len(stream))

    # Sequential oracle (its own injector: stalls/slowdowns/traps apply
    # here too, so trap plans exercise isolation in both shapes).
    baseline_state, iterations = _armed_state(app, plan, stream)
    run_sequential(app.module.pps(app.pps_name), baseline_state,
                   iterations=iterations,
                   watchdog=Watchdog(watchdog_quantum),
                   isolate_traps=True)
    baseline = observe(baseline_state)
    baseline_state.faults.absorb_stream(stream_injector)
    outcome.faults = baseline_state.faults.counters()
    outcome.baseline_dead_letters = len(baseline_state.dead_letters)
    _collect(collect_letters, baseline_state, plan_name, degree=0)

    for degree in degrees:
        result = pipeline_pps(app.module, app.pps_name, degree, cache=cache)
        state, iterations = _armed_state(app, plan, stream)
        run = run_pipeline(result.stages, state, iterations=iterations,
                           watchdog=Watchdog(watchdog_quantum),
                           isolate_traps=True)
        degree_outcome = DegreeOutcome(degree=degree)
        degree_outcome.dead_letters = len(state.dead_letters)
        degree_outcome.traps = sum(stats.traps
                                   for stats in run.stats.values())
        _collect(collect_letters, state, plan_name, degree=degree)
        if plan.semantics_preserving():
            degree_outcome.mismatches = compare(baseline, observe(state))
            degree_outcome.ok = not degree_outcome.mismatches
        else:
            # Trap plans void the differential; the contract is that the
            # run drains under quarantine and every trap left a letter.
            armed = state.faults.traps_armed
            degree_outcome.ok = degree_outcome.dead_letters >= min(1, armed)
        outcome.degrees.append(degree_outcome)
    return outcome


DEFAULT_SHARD_COUNTS = (2, 4, 8)


@dataclass
class ServeShardOutcome:
    """One serving run of one shard count under a worker-fault plan."""

    shards: int
    restarts: int = 0
    replays: int = 0
    redeliveries: int = 0
    resharded: int = 0
    committed: int = 0
    batches: int = 0
    kills_observed: bool = False
    mismatches: list = field(default_factory=list)
    ok: bool = True

    def as_dict(self) -> dict:
        return {
            "shards": self.shards,
            "restarts": self.restarts,
            "replays": self.replays,
            "redeliveries": self.redeliveries,
            "resharded": self.resharded,
            "committed": self.committed,
            "batches": self.batches,
            "kills_observed": self.kills_observed,
            "mismatches": list(self.mismatches),
            "ok": self.ok,
        }


@dataclass
class ServeChaosReport:
    """The worker-kill serve differential across shard counts."""

    app: str
    plan: str
    packets: int
    degree: int
    outcomes: list[ServeShardOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    def as_dict(self) -> dict:
        return {
            "app": self.app,
            "plan": self.plan,
            "packets": self.packets,
            "degree": self.degree,
            "ok": self.ok,
            "shard_counts": [outcome.shards for outcome in self.outcomes],
            "outcomes": [outcome.as_dict() for outcome in self.outcomes],
        }

    def render(self) -> str:
        lines = [f"serve chaos differential: app {self.app}, "
                 f"plan {self.plan}, {self.packets} packets, "
                 f"degree {self.degree}"]
        for outcome in self.outcomes:
            verdict = "ok" if outcome.ok else "FAIL"
            lines.append(
                f"  shards {outcome.shards}: {verdict} — "
                f"{outcome.restarts} restarts, {outcome.replays} replays, "
                f"{outcome.redeliveries} redeliveries, "
                f"{outcome.committed}/{outcome.batches} batches"
                + (f", {len(outcome.mismatches)} mismatches"
                   if outcome.mismatches else ""))
        lines.append(f"  overall: {'ok' if self.ok else 'FAIL'}")
        return "\n".join(lines)


def serve_differential(app_name: str = "ipv4", *,
                       plan: FaultPlan | None = None,
                       shard_counts: tuple = DEFAULT_SHARD_COUNTS,
                       degree: int = 1, packets: int = 48, seed: int = 7,
                       batch: int = 2,
                       watchdog_quantum: int | None = 200_000,
                       cache=None, policy=None) -> ServeChaosReport:
    """The worker-kill fault kind of the chaos suite: serve the stream
    through the sharded runtime while the plan kills workers mid-run,
    and require the committed output to stay bit-identical per flow to
    the sequential oracle at every shard count.

    The default plan is ``worker-kill`` (every worker murdered once at
    a batch boundary), so every serving run must restart at least one
    worker and replay its journal — ``kills_observed`` asserts the run
    was not vacuously clean.  The small default batch size keeps every
    shard at 2+ batches even at 8 shards, which is what arms the
    kill-after-one-commit fault on every worker.
    """
    from repro.runtime.faults import serve_plans
    from repro.serve.supervise import ServeRuntime

    if plan is None:
        plan = serve_plans()["worker-kill"]
    report = ServeChaosReport(app=app_name, plan=plan.name or "anonymous",
                              packets=packets, degree=degree)
    expects_kills = bool(plan.workers)
    for shards in shard_counts:
        runtime = ServeRuntime(
            app_name, shards=shards, degree=degree, packets=packets,
            seed=seed, batch=batch, plan=plan, cache=cache, policy=policy,
            watchdog_quantum=watchdog_quantum, verify=True)
        serve_report = runtime.run()
        counters = serve_report.counters
        outcome = ServeShardOutcome(
            shards=shards,
            restarts=counters.get("restarts", 0),
            replays=counters.get("replays", 0),
            redeliveries=counters.get("redeliveries", 0),
            resharded=counters.get("resharded", 0),
            committed=counters.get("committed", 0),
            batches=counters.get("batches", 0),
            kills_observed=counters.get("restarts", 0) > 0,
            mismatches=list(serve_report.mismatches))
        outcome.ok = (not outcome.mismatches
                      and counters.get("pending", 0) == 0
                      and (outcome.kills_observed or not expects_kills))
        report.outcomes.append(outcome)
    return report


def _armed_state(app, plan: FaultPlan, stream: list):
    """A fresh machine with a fresh injector armed, fed ``stream``."""
    from repro.runtime.state import MachineState

    state = MachineState(app.module)
    FaultInjector(plan).arm(state)
    iterations = app.feed(state, stream)
    return state, iterations


def _collect(collect_letters, state, plan_name: str, degree: int) -> None:
    if collect_letters is None:
        return
    for letter in state.dead_letters:
        record = letter.as_dict()
        record["plan"] = plan_name
        record["pipeline_degree"] = degree
        collect_letters.append(record)

"""Evaluation harness: metrics, experiments (paper figures), reports."""

from repro.eval.metrics import (
    PipelineMeasurement,
    SequentialMeasurement,
    measure_pipeline,
    measure_sequential,
)
from repro.eval.experiments import (
    app_statistics,
    figure19,
    figure20,
    figure21,
    figure22,
    headline_speedups,
    speedup_series,
)
from repro.eval.explore import (
    SearchSpace,
    Weights,
    auto_pick,
    deterministic_report,
    explore,
    pareto_flags,
)
from repro.eval.report import format_series_table, render_figure

__all__ = [
    "PipelineMeasurement",
    "SearchSpace",
    "SequentialMeasurement",
    "Weights",
    "auto_pick",
    "deterministic_report",
    "explore",
    "pareto_flags",
    "app_statistics",
    "figure19",
    "figure20",
    "figure21",
    "figure22",
    "format_series_table",
    "headline_speedups",
    "measure_pipeline",
    "measure_sequential",
    "render_figure",
    "speedup_series",
]

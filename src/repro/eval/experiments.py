"""Regeneration of the paper's evaluation figures (paper §4).

* Figure 19 — speedup vs pipelining degree, IPv4 forwarding PPSes
  (RX, IPv4, Scheduler, QM, TX);
* Figure 20 — speedup vs degree, IP forwarding PPSes (RX, IP with IPv4
  traffic, IP with IPv6 traffic, TX);
* Figure 21 — live-set transmission overhead vs degree, IPv4 forwarding;
* Figure 22 — live-set transmission overhead vs degree, IP forwarding;
* the §4 headline: ">4X speedup at 9 stages" for the IPv4 and IP PPSes;
* the Figure 18 application statistics (code size / blocks / routines /
  loops of each PPS).

Each function returns ``{series_name: {degree: value}}`` so the report
layer and the benchmarks print the same rows the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.cfg import cfg_of, find_pps_loop
from repro.analysis.graph import strongly_connected_components
from repro.apps.suite import build_app
from repro.eval.metrics import measure_pipeline, measure_sequential
from repro.machine.costs import NN_RING, CostModel
from repro.pipeline.liveset import Strategy

DEGREES = list(range(1, 11))

#: Series of the two benchmark figures (paper order).
FIGURE19_APPS = ["rx", "ipv4", "scheduler", "qm", "tx"]
FIGURE20_APPS = ["rx", "ip_v4", "ip_v6", "tx"]


@dataclass
class ExperimentConfig:
    """Shared knobs for figure regeneration."""

    packets: int = 120
    seed: int = 7
    degrees: list[int] = None
    costs: CostModel = NN_RING
    strategy: Strategy = Strategy.PACKED
    check_equivalence: bool = True
    #: Optional :class:`repro.cache.CompileCache` memoizing partitions.
    cache: object = None

    def __post_init__(self):
        if self.degrees is None:
            self.degrees = list(DEGREES)


def speedup_series(app_name: str, config: ExperimentConfig | None = None,
                   *, metric: str = "speedup") -> dict[int, float]:
    """``{degree: value}`` for one PPS; metric is ``speedup`` or
    ``overhead`` (the Figures 21/22 ratio)."""
    config = config or ExperimentConfig()
    app = build_app(app_name, packets=config.packets, seed=config.seed)
    baseline = measure_sequential(app)
    series: dict[int, float] = {}
    for degree in config.degrees:
        measurement = measure_pipeline(
            app, degree, baseline=baseline, costs=config.costs,
            strategy=config.strategy,
            check_equivalence=config.check_equivalence,
            cache=config.cache,
        )
        if metric == "speedup":
            series[degree] = measurement.speedup
        elif metric == "overhead":
            series[degree] = measurement.overhead_ratio
        else:
            raise ValueError(f"unknown metric {metric!r}")
    return series


def _figure(apps: list[str], metric: str,
            config: ExperimentConfig | None = None) -> dict[str, dict[int, float]]:
    config = config or ExperimentConfig()
    return {name: speedup_series(name, config, metric=metric) for name in apps}


def figure19(config: ExperimentConfig | None = None) -> dict[str, dict[int, float]]:
    """Speedup vs degree for the IPv4 forwarding PPSes."""
    return _figure(FIGURE19_APPS, "speedup", config)


def figure20(config: ExperimentConfig | None = None) -> dict[str, dict[int, float]]:
    """Speedup vs degree for the IP forwarding PPSes."""
    return _figure(FIGURE20_APPS, "speedup", config)


def figure21(config: ExperimentConfig | None = None) -> dict[str, dict[int, float]]:
    """Live-set transmission overhead vs degree, IPv4 forwarding."""
    return _figure(FIGURE19_APPS, "overhead", config)


def figure22(config: ExperimentConfig | None = None) -> dict[str, dict[int, float]]:
    """Live-set transmission overhead vs degree, IP forwarding."""
    return _figure(FIGURE20_APPS, "overhead", config)


def headline_speedups(config: ExperimentConfig | None = None) -> dict[str, float]:
    """The paper's headline: speedup at a 9-stage pipeline for the IPv4
    forwarding PPS and the IP forwarding PPS (both traffics)."""
    config = config or ExperimentConfig(degrees=[9])
    result = {}
    for name in ("ipv4", "ip_v4", "ip_v6"):
        series = speedup_series(name, ExperimentConfig(
            packets=config.packets, seed=config.seed, degrees=[9],
            costs=config.costs, strategy=config.strategy,
            check_equivalence=config.check_equivalence,
            cache=config.cache,
        ))
        result[name] = series[9]
    return result


def app_statistics(app_names: list[str] | None = None) -> dict[str, dict[str, int]]:
    """Structural statistics of each PPS (the paper's Figure 18 text:
    "~10K lines of codes, >600 basic blocks, ~100 routines, >20 loops")."""
    names = app_names or ["rx", "ipv4", "ip_v4", "scheduler", "qm", "tx"]
    stats: dict[str, dict[str, int]] = {}
    for name in names:
        app = build_app(name, packets=8)
        pps = app.module.pps(app.pps_name)
        graph = cfg_of(pps)
        loops = sum(
            1 for component in strongly_connected_components(graph)
            if len(component) > 1
        )
        loop = find_pps_loop(pps)
        stats[name] = {
            "source_lines": len([line for line in app.source.splitlines()
                                 if line.strip()]),
            "basic_blocks": len(pps.blocks),
            "body_blocks": len(loop.body),
            "instructions": sum(len(b.all_instructions())
                                for b in pps.ordered_blocks()),
            "static_weight": pps.weight(),
            "inner_loops": loops,
        }
    return stats

"""Cost-aware design-space exploration (``repro explore``).

Kugelblitz (PAPERS.md) argues packet pipelines should be *searched* over
executable cost models rather than hand-tuned; the pipelined-DNN
stage-guarantee line shows that stage counts picked from a measured
frontier beat fixed-k heuristics.  This module is that search for PPS-C:

1. **enumerate** a declarative :class:`SearchSpace` per app — pipeline
   degree D, balance slack ε, partitioner knobs (incremental restart,
   ``max_block_instructions``), and named machine cost tables
   (:mod:`repro.machine.costs` registry, e.g. NN vs scratch rings);
2. **evaluate** every cell through the cached, parallel,
   supervisor-verified pipeline (:mod:`repro.eval.sweep` fan-out): each
   cell is partitioned via :func:`~repro.pipeline.supervisor.supervise_partition`
   (independent verification + graceful degradation) and simulated with
   the observational-equivalence check on;
3. **score** each cell on (simulated throughput — the speedup over the
   sequential PPS, transmitted live-set words, realized stage count) and
   keep ``partition_seconds`` as nondeterministic context;
4. **emit** a per-app Pareto frontier (JSON + markdown) and an
   **auto-pick**: the best verified configuration per app under a
   user-weighted objective, with dominated-by / plateau / tie-break
   provenance for every cell it passed over.

Determinism: the scored metrics are exactly the deterministic outputs of
the partitioner + simulator, so the frontier artifact produced by
:func:`deterministic_report` is byte-identical across repeated runs and
across ``-j`` levels (wall-clock timings and cache counters are confined
to the separately written timings report).  CI diffs two back-to-back
runs to hold that line, and ``scripts/bench_delta.py --frontier-budget``
gates the committed ``EXPLORE_frontier.json`` picks.

Why the default pick rule is *marginal* (a knee finder): speedup curves
in this domain flatten when per-stage live-set transmission stops
shrinking while compute does (paper Fig. 19/21 — "the speedup of the RX
and TX PPSes ... scales well up to pipelining degree 5, after which the
speedup levels off").  The marginal rule climbs an app's degree ladder
and stops at the first degree whose *weighted* score does not improve —
rx parks at 5 where its curve plateaus, while ipv4's monotone curve
climbs to 9.  ``rule="score"`` is the plain argmax alternative.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass

from repro.errors import ReproError

#: Version of the frontier-report schema; bump on layout changes so the
#: CI gate never compares structurally different reports.
EXPLORE_SCHEMA_VERSION = 1

#: Objective directions: maximize speedup, minimize words and stages.
OBJECTIVES = ("speedup", "transmitted_words", "stages")


class ExploreError(ReproError):
    """A malformed search space, weights spec, or exploration failure."""


# -- the declarative search space --------------------------------------------


@dataclass(frozen=True)
class SearchSpace:
    """One declarative (app x degree x knob x cost-table) search space.

    ``degrees`` should normally include 1: the sequential PPS is the
    always-valid floor every pipelined cell is judged against, and the
    auto-pick ladder starts from it (so apps that do not pipeline —
    scheduler, qm — pick degree 1 instead of a losing cell).
    """

    apps: tuple
    degrees: tuple
    rings: tuple = ("nn-ring",)
    epsilons: tuple = (1.0 / 16.0,)
    incremental: tuple = (True,)
    max_block_instructions: tuple = (12,)
    packets: int = 60
    seed: int = 7

    def validate(self) -> "SearchSpace":
        """Check the space is well-formed; returns self for chaining.

        Also asserts that every selected cost table has a *distinct*
        compile-cache identity (:func:`repro.cache.key.cost_identity`) —
        the cache is salted with the full cost table, and this is where
        that invariant is checked before a search relies on it.
        """
        from repro.cache.key import cost_identity
        from repro.machine.costs import cost_table

        if not self.apps:
            raise ExploreError("search space has no apps")
        if not self.degrees:
            raise ExploreError("search space has no degrees")
        for degree in self.degrees:
            if not isinstance(degree, int) or degree < 1:
                raise ExploreError(f"bad degree {degree!r}: must be an "
                                   f"integer >= 1")
        for epsilon in self.epsilons:
            if not epsilon > 0:
                raise ExploreError(f"bad epsilon {epsilon!r}: must be > 0")
        for mbi in self.max_block_instructions:
            if not isinstance(mbi, int) or mbi < 0:
                raise ExploreError(f"bad max_block_instructions {mbi!r}")
        identities: dict[str, str] = {}
        for ring in self.rings:
            table = cost_table(ring)  # raises ValueError on unknown names
            # Compare the cost *parameters* (identity minus the name):
            # two same-parameter tables are distinct cache addresses —
            # the key is salted with the name — but exploring both would
            # evaluate identical cells under two labels.
            fields = {key: value
                      for key, value in cost_identity(table).items()
                      if key != "name"}
            identity = json.dumps(fields, sort_keys=True)
            clash = identities.get(identity)
            if clash is not None and clash != table.name:
                raise ExploreError(
                    f"cost tables {clash!r} and {table.name!r} have "
                    f"identical cost parameters; exploring both would "
                    f"duplicate every cell under two labels")
            identities[identity] = table.name
        return self

    def combos(self) -> list[tuple]:
        """Deterministic (ring, epsilon, incremental, mbi) combinations.

        Ring order follows the caller's ``rings`` tuple (canonicalized);
        the numeric knobs are sorted so the same space always enumerates
        in the same order regardless of how it was written down.
        """
        return list(itertools.product(
            self.canonical_rings(),
            sorted(set(self.epsilons)),
            sorted(set(self.incremental), reverse=True),
            sorted(set(self.max_block_instructions)),
        ))

    def cell_count(self) -> int:
        return len(self.apps) * len(set(self.degrees)) * len(self.combos())

    def canonical_rings(self) -> list[str]:
        from repro.machine.costs import cost_table

        rings = []
        for ring in self.rings:
            name = cost_table(ring).name
            if name not in rings:
                rings.append(name)
        return rings

    def as_dict(self) -> dict:
        return {
            "apps": list(self.apps),
            "degrees": sorted(set(self.degrees)),
            "rings": self.canonical_rings(),
            "epsilons": sorted(set(self.epsilons)),
            "incremental": sorted(set(self.incremental), reverse=True),
            "max_block_instructions": sorted(
                set(self.max_block_instructions)),
            "packets": self.packets,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SearchSpace":
        known = {"apps", "degrees", "rings", "epsilons", "incremental",
                 "max_block_instructions", "packets", "seed"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ExploreError(f"unknown search-space keys: "
                               f"{', '.join(unknown)}")
        kwargs = {key: (tuple(value) if isinstance(value, list) else value)
                  for key, value in data.items()}
        return cls(**kwargs).validate()


# -- the user-weighted objective ---------------------------------------------


@dataclass(frozen=True)
class Weights:
    """Scalarization weights over the deterministic cell metrics.

    ``score = speedup*s - words*w - stages*d``.  The defaults make one
    transmitted live-set word worth 0.005 speedup and one pipeline stage
    worth 0.01 — small enough that real speedup always wins, large
    enough that a flat curve stops paying for stages and ring traffic.
    ``partition_seconds`` is deliberately not scorable: it is wall-clock
    noise, and weighting it would make auto-pick nondeterministic.
    """

    speedup: float = 1.0
    words: float = 0.005
    stages: float = 0.01

    def score(self, metrics: dict) -> float:
        return round(
            self.speedup * metrics["speedup"]
            - self.words * metrics["transmitted_words"]
            - self.stages * metrics["stages"], 6)

    def as_dict(self) -> dict:
        return {"speedup": self.speedup, "words": self.words,
                "stages": self.stages}

    @classmethod
    def parse(cls, text: str) -> "Weights":
        """Parse ``speedup=1,words=0.005,stages=0.01`` (any subset)."""
        values = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ExploreError(f"--weights expects name=value pairs "
                                   f"(got {part!r})")
            name, _, value = part.partition("=")
            name = name.strip()
            if name not in ("speedup", "words", "stages"):
                raise ExploreError(f"unknown objective weight {name!r} "
                                   f"(expected speedup, words, stages)")
            try:
                values[name] = float(value)
            except ValueError as exc:
                raise ExploreError(f"bad weight value in {part!r}: "
                                   f"{exc}") from exc
        weights = cls(**values)
        if weights.speedup <= 0:
            raise ExploreError("the speedup weight must be positive")
        if weights.words < 0 or weights.stages < 0:
            raise ExploreError("words/stages weights must be >= 0 "
                               "(they are penalties)")
        return weights


# -- Pareto dominance --------------------------------------------------------


def dominates(a: dict, b: dict) -> bool:
    """True when metrics ``a`` Pareto-dominates ``b``: no worse on every
    objective (speedup up, transmitted words down, stages down) and
    strictly better on at least one."""
    no_worse = (a["speedup"] >= b["speedup"]
                and a["transmitted_words"] <= b["transmitted_words"]
                and a["stages"] <= b["stages"])
    better = (a["speedup"] > b["speedup"]
              or a["transmitted_words"] < b["transmitted_words"]
              or a["stages"] < b["stages"])
    return no_worse and better


def pareto_flags(metrics: list[dict]) -> list[bool]:
    """``flags[i]`` is True iff ``metrics[i]`` is on the Pareto frontier.

    Sorted-sweep filter: cells are visited by descending speedup (ties
    broken toward cheaper cells), so a cell can only be dominated by one
    already kept — each candidate is tested against the running skyline
    instead of every other cell.  ``tests/test_explore.py`` property-
    checks this against the brute-force all-pairs dominance definition.
    """
    order = sorted(range(len(metrics)),
                   key=lambda i: (-metrics[i]["speedup"],
                                  metrics[i]["transmitted_words"],
                                  metrics[i]["stages"], i))
    flags = [False] * len(metrics)
    skyline: list[dict] = []
    for index in order:
        candidate = metrics[index]
        if any(dominates(kept, candidate) for kept in skyline):
            continue
        flags[index] = True
        skyline.append(candidate)
    return flags


def _dominator_id(cell: dict, cells: list[dict]) -> str | None:
    """The id of the strongest cell dominating ``cell`` (deterministic:
    best (speedup, -words, -stages), then smallest id)."""
    dominators = [other for other in cells
                  if other["metrics"] is not None
                  and dominates(other["metrics"], cell["metrics"])]
    if not dominators:
        return None
    best = min(dominators,
               key=lambda other: (-other["metrics"]["speedup"],
                                  other["metrics"]["transmitted_words"],
                                  other["metrics"]["stages"], other["id"]))
    return best["id"]


# -- auto-pick ---------------------------------------------------------------


def _combo_key(cell: dict) -> tuple:
    config = cell["config"]
    return (config["ring"], config["epsilon"], config["incremental"],
            config["max_block_instructions"])


def _tie_key(cell: dict, score: float) -> tuple:
    """Deterministic total order on candidates: higher score first, then
    fewer stages, fewer words, higher speedup, and finally the id."""
    metrics = cell["metrics"]
    return (-score, metrics["stages"], metrics["transmitted_words"],
            -metrics["speedup"], cell["id"])


def auto_pick(cells: list[dict], weights: Weights, *,
              rule: str = "marginal", min_gain: float = 0.0) -> dict | None:
    """Select the best verified configuration among one app's cells.

    ``rule="marginal"`` (default) climbs each knob combo's degree ladder
    and keeps the last degree whose weighted score improved by more than
    ``min_gain`` — the first plateau ends the climb (the paper's "levels
    off" knee).  ``rule="score"`` is the plain argmax over all cells.
    Degraded or unverified cells are never picked; annotates every cell
    with a ``pick`` provenance note and returns the pick record (or
    ``None`` when no cell qualifies).
    """
    if rule not in ("marginal", "score"):
        raise ExploreError(f"unknown pick rule {rule!r} "
                           f"(expected marginal or score)")
    eligible = []
    for cell in cells:
        if not cell["verified"]:
            cell["pick"] = "ineligible: unverified (partitioning failed)"
        elif cell["degraded"]:
            cell["pick"] = (f"ineligible: degraded to "
                            f"{cell['achieved_degree']} stages "
                            f"(duplicates a lower-degree cell)")
        else:
            eligible.append(cell)
    if not eligible:
        return None
    scores = {cell["id"]: weights.score(cell["metrics"])
              for cell in eligible}

    if rule == "score":
        candidates = {cell["id"]: cell for cell in eligible}
        ladders: dict[tuple, list] = {}
    else:
        candidates = {}
        ladders = {}
        combos: dict[tuple, list] = {}
        for cell in eligible:
            combos.setdefault(_combo_key(cell), []).append(cell)
        for combo, row in combos.items():
            row.sort(key=lambda cell: cell["config"]["degree"])
            incumbent = row[0]
            trace = [{"id": incumbent["id"],
                      "degree": incumbent["config"]["degree"],
                      "score": scores[incumbent["id"]],
                      "decision": "start"}]
            for cell in row[1:]:
                gain = round(scores[cell["id"]]
                             - scores[incumbent["id"]], 6)
                if gain > min_gain:
                    trace.append({"id": cell["id"],
                                  "degree": cell["config"]["degree"],
                                  "score": scores[cell["id"]],
                                  "gain": gain, "decision": "accept"})
                    incumbent = cell
                else:
                    trace.append({"id": cell["id"],
                                  "degree": cell["config"]["degree"],
                                  "score": scores[cell["id"]],
                                  "gain": gain, "decision": "stop"})
                    cell["pick"] = (
                        f"plateau: score gain {gain:+.4f} <= "
                        f"{min_gain:g} over {incumbent['id']} — the "
                        f"ladder stopped at degree "
                        f"{incumbent['config']['degree']}")
                    for later in row[row.index(cell) + 1:]:
                        later["pick"] = (
                            f"beyond the plateau at degree "
                            f"{cell['config']['degree']} (ladder stopped "
                            f"at {incumbent['id']})")
                    break
            candidates[incumbent["id"]] = incumbent
            ladders[combo] = trace

    ranked = sorted(candidates.values(),
                    key=lambda cell: _tie_key(cell, scores[cell["id"]]))
    picked = ranked[0]
    for cell in eligible:
        if cell["id"] == picked["id"]:
            continue
        if cell["id"] in candidates:
            cell["pick"] = (f"candidate (score "
                            f"{scores[cell['id']]:.4f}) outscored by "
                            f"{picked['id']} ({scores[picked['id']]:.4f})")
        elif "pick" not in cell:
            cell["pick"] = (f"below the pick on its ladder "
                            f"(score {scores[cell['id']]:.4f})")
    runner_up = ranked[1] if len(ranked) > 1 else None
    tie_break = None
    if (runner_up is not None
            and scores[runner_up["id"]] == scores[picked["id"]]):
        tie_break = (f"tied score with {runner_up['id']}; fewer stages, "
                     f"then fewer words, then id order decided")
    picked["pick"] = f"picked (score {scores[picked['id']]:.4f})"
    pick = {
        "id": picked["id"],
        "config": dict(picked["config"]),
        "metrics": dict(picked["metrics"]),
        "score": scores[picked["id"]],
        "rule": rule,
        "why": _explain_pick(picked, scores, ladders, ranked, rule),
    }
    if tie_break:
        pick["tie_break"] = tie_break
    if ladders:
        pick["ladder"] = ladders[_combo_key(picked)]
    if runner_up is not None:
        pick["runner_up"] = {"id": runner_up["id"],
                             "score": scores[runner_up["id"]]}
    return pick


def _explain_pick(picked: dict, scores: dict, ladders: dict,
                  ranked: list, rule: str) -> str:
    parts = []
    if rule == "marginal":
        trace = ladders[_combo_key(picked)]
        climbed = [str(step["degree"]) for step in trace
                   if step["decision"] in ("start", "accept")]
        parts.append(f"climbed degree {' -> '.join(climbed)}")
        stopped = [step for step in trace if step["decision"] == "stop"]
        if stopped:
            step = stopped[0]
            parts.append(f"stopped: degree {step['degree']} gained "
                         f"{step['gain']:+.4f}")
        else:
            parts.append("reached the top of the degree grid still "
                         "improving")
    else:
        parts.append(f"argmax weighted score over "
                     f"{len(scores)} eligible cells")
    others = [cell for cell in ranked[1:]]
    if others:
        best = others[0]
        parts.append(f"beat {len(others)} other candidate(s), next: "
                     f"{best['id']} ({scores[best['id']]:.4f})")
    return "; ".join(parts)


# -- the exploration driver --------------------------------------------------


def explore(space: SearchSpace, *, weights: Weights | None = None,
            rule: str = "marginal", min_gain: float = 0.0,
            jobs: int = 1, cache=None, warm_start: bool = True,
            keep_going: bool = False) -> dict:
    """Evaluate ``space`` and return the full exploration report.

    The report is JSON-serializable: per app the cell list (task order —
    deterministic at any ``jobs`` level), the Pareto frontier ids, and
    the auto-pick with provenance; plus sweep failures (``keep_going``)
    and the nondeterministic timing/cache numbers that
    :func:`deterministic_report` strips for the frontier artifact.
    """
    from repro.eval.sweep import explore_tasks, run_sweep

    space.validate()
    weights = weights or Weights()
    cache_dir = str(cache.root) if cache is not None else None
    tasks = explore_tasks(space, cache_dir=cache_dir,
                          warm_start=warm_start, keep_going=keep_going)
    results = run_sweep(tasks, jobs=jobs, keep_going=keep_going)

    failures = [entry for entry in results if entry.get("failed")]
    completed = [entry for entry in results if not entry.get("failed")]
    # Cell-level keep-going: a row that survived may still carry failed
    # degree cells; they join the artifact's ``failures`` list.
    for entry in completed:
        failures.extend(entry.get("cell_failures") or [])
    if cache is not None:
        for entry in completed:
            if entry.get("cache"):
                cache.merge_counters(entry["cache"])

    by_app: dict[str, list[dict]] = {app: [] for app in space.apps}
    timing = {"build_seconds": 0.0, "partition_seconds": 0.0}
    for entry in completed:
        by_app[entry["app"]].extend(entry["cells"])
        for key in timing:
            timing[key] += entry["timing"][key]

    apps: dict[str, dict] = {}
    for app, cells in by_app.items():
        scored = [cell for cell in cells if cell["metrics"] is not None]
        flags = pareto_flags([cell["metrics"] for cell in scored])
        for cell, on_front in zip(scored, flags):
            cell["pareto"] = on_front
            if not on_front:
                cell["dominated_by"] = _dominator_id(cell, scored)
        pick = auto_pick(cells, weights, rule=rule, min_gain=min_gain)
        apps[app] = {
            "cells": cells,
            "frontier": [cell["id"] for cell in scored if cell["pareto"]],
            "pick": pick,
        }

    report = {
        "schema": EXPLORE_SCHEMA_VERSION,
        "space": space.as_dict(),
        "weights": weights.as_dict(),
        "rule": rule,
        "min_gain": min_gain,
        "apps": apps,
        "timing": {key: round(value, 4) for key, value in timing.items()},
    }
    if failures:
        report["failures"] = failures
    if cache is not None:
        report["cache"] = cache.counters()
    return report


def deterministic_report(report: dict) -> dict:
    """The byte-identical subset of an exploration report.

    Strips wall-clock timings and cache counters (top level and per
    cell); everything left is a pure function of the search space, so
    repeated runs — at any ``-j`` level, cold or cached — produce the
    same bytes.  This is what ``repro explore`` writes to
    ``frontier.json`` and what the CI determinism diff and the
    ``--frontier-budget`` gate consume.
    """
    clean = {key: value for key, value in report.items()
             if key not in ("timing", "cache")}
    clean["apps"] = {}
    for app, entry in report["apps"].items():
        cells = []
        for cell in entry["cells"]:
            cells.append({key: value for key, value in cell.items()
                          if key != "timing"})
        clean["apps"][app] = {**entry, "cells": cells}
    return clean


# -- rendering ---------------------------------------------------------------


def render_markdown(report: dict) -> str:
    """The frontier as a markdown document (one table per app)."""
    space = report["space"]
    weights = report["weights"]
    lines = ["# repro explore — Pareto frontier", ""]
    lines.append(
        f"Space: apps={','.join(space['apps'])} "
        f"degrees={','.join(map(str, space['degrees']))} "
        f"rings={','.join(space['rings'])} "
        f"epsilons={','.join(format(e, 'g') for e in space['epsilons'])} "
        f"packets={space['packets']} seed={space['seed']}")
    lines.append(
        f"Objective: {weights['speedup']:g}*speedup "
        f"- {weights['words']:g}*words - {weights['stages']:g}*stages "
        f"(rule: {report['rule']})")
    lines.append("")
    for app, entry in report["apps"].items():
        pick = entry["pick"]
        if pick is not None:
            lines.append(f"## {app} — pick: `{pick['id']}` "
                         f"(score {pick['score']:.4f})")
            lines.append("")
            lines.append(f"{pick['why']}")
        else:
            lines.append(f"## {app} — no eligible configuration")
        lines.append("")
        lines.append("| cell | speedup | words | stages | verified "
                     "| pareto | note |")
        lines.append("|---|---|---|---|---|---|---|")
        for cell in entry["cells"]:
            metrics = cell["metrics"]
            if metrics is None:
                lines.append(f"| {cell['id']} | — | — | — | no | — "
                             f"| {cell.get('error', 'failed')} |")
                continue
            note = cell.get("pick", "")
            if not cell.get("pareto", False) and cell.get("dominated_by"):
                note = (f"dominated by {cell['dominated_by']}"
                        + (f"; {note}" if note else ""))
            lines.append(
                f"| {cell['id']} | {metrics['speedup']:.4f} "
                f"| {metrics['transmitted_words']} | {metrics['stages']} "
                f"| {'yes' if cell['verified'] else 'no'} "
                f"| {'yes' if cell.get('pareto') else 'no'} | {note} |")
        lines.append("")
    if report.get("failures"):
        lines.append(f"**{len(report['failures'])} sweep cells failed**; "
                     f"reproduce with:")
        lines.append("")
        for failure in report["failures"]:
            lines.append(f"- `{failure['repro']}`")
        lines.append("")
    return "\n".join(lines)


def render_summary(report: dict) -> str:
    """The one-screen ``repro explore`` stdout summary."""
    lines = []
    cell_count = sum(len(entry["cells"])
                     for entry in report["apps"].values())
    frontier_count = sum(len(entry["frontier"])
                         for entry in report["apps"].values())
    lines.append(f"explore: {cell_count} cells -> {frontier_count} on the "
                 f"frontier across {len(report['apps'])} apps")
    for app, entry in report["apps"].items():
        pick = entry["pick"]
        if pick is None:
            lines.append(f"  {app:10s} no eligible configuration")
            continue
        metrics = pick["metrics"]
        lines.append(
            f"  {app:10s} pick d={metrics['stages']} "
            f"{pick['config']['ring']:12s} speedup {metrics['speedup']:5.2f}x "
            f"words {metrics['transmitted_words']:3d} "
            f"score {pick['score']:.4f}")
    if report.get("failures"):
        lines.append(f"  {len(report['failures'])} cells FAILED")
    return "\n".join(lines)

"""Progen fuzz harness: parse → partition → verify → differential.

``run_fuzz`` drives randomly generated PPS-C programs
(:mod:`repro.testing.progen`) through the whole contract the paper
makes: the program must compile, partition at the chosen degree, pass
the independent post-partition verifier, and execute pipelined with
observations bit-identical to the sequential oracle.  Any failure is
recorded with its phase (``frontend`` / ``partition`` / ``verify`` /
``execution``) and automatically *shrunk*: a brace-aware delta-debugging
pass removes statements and whole nested regions while the failure
signature (phase + exception type) reproduces, so the artifact a CI
failure uploads is close to minimal.

``self_test`` closes the loop on the verifier itself: it corrupts a
known-good partition four ways — drop a transmitted live variable, flip
a cut edge backwards, unbalance a stage, break the control-object
dispatch — and checks the verifier rejects every seeded defect.  A
verifier that silently passes a corrupted partition is worse than none.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.ir.inline import inline_module
from repro.ir.lowering import lower_program
from repro.ir.optimize import optimize_module
from repro.lang import compile_source
from repro.pipeline.transform import pipeline_pps
from repro.pipeline.verify import verify_partition
from repro.runtime.equivalence import assert_equivalent, observe
from repro.runtime.scheduler import run_pipeline, run_sequential
from repro.runtime.state import MachineState
from repro.testing.progen import random_pps_source

#: Pipeline phases a fuzz case can fail in, in execution order.
PHASES = ("frontend", "partition", "verify", "execution")


class CheckFailure(ReproError):
    """One fuzz case broke the pipeline contract in ``phase``."""

    def __init__(self, phase: str, cause: BaseException):
        super().__init__(f"{phase}: {type(cause).__name__}: {cause}")
        self.phase = phase
        self.cause = cause

    @property
    def signature(self) -> tuple[str, str]:
        """What shrinking must preserve: the phase and exception type."""
        return (self.phase, type(self.cause).__name__)


def compile_progen(source: str):
    """Compile generated PPS-C text the way the CLI compiles files."""
    module = lower_program(compile_source(source, "<fuzz>"), "<fuzz>")
    inline_module(module)
    optimize_module(module)
    return module


def fuzz_state(module, seed: int, packets: int) -> MachineState:
    """A deterministic machine state for one fuzz case."""
    state = MachineState(module)
    for name, words in state.regions.items():
        if name.startswith("tab"):
            state.load_region(name, [((i * 13 + seed) % 97)
                                     for i in range(len(words))])
    state.feed_pipe("in_q", [((i * 31 + seed) % 251) for i in range(packets)])
    return state


def check_program(source: str, degree: int, *, packets: int = 24,
                  seed: int = 0) -> None:
    """Run one program through the whole contract; raise CheckFailure."""
    try:
        module = compile_progen(source)
    except Exception as exc:
        raise CheckFailure("frontend", exc) from exc
    pps_name = next(iter(module.ppses))
    try:
        result = pipeline_pps(module, pps_name, degree)
    except Exception as exc:
        raise CheckFailure("partition", exc) from exc
    try:
        verify_partition(result).raise_if_rejected()
    except Exception as exc:
        raise CheckFailure("verify", exc) from exc
    try:
        baseline_state = fuzz_state(module, seed, packets)
        run_sequential(module.pps(pps_name), baseline_state,
                       iterations=packets)
        baseline = observe(baseline_state)
        state = fuzz_state(module, seed, packets)
        run_pipeline(result.stages, state, iterations=packets)
        assert_equivalent(baseline, observe(state))
    except Exception as exc:
        raise CheckFailure("execution", exc) from exc


# -- shrinking ---------------------------------------------------------------

#: Lines the shrinker must never remove: the program scaffold.
_SCAFFOLD_MARKERS = ("pps ", "for (;;)", "pipe_recv(in_q)", "pipe_send(out_q",
                     "pipe in_q", "pipe out_q")


def _removable_regions(lines: list[str]) -> list[tuple[int, int]]:
    """Brace-balanced candidate regions, largest first.

    A line that net-opens braces owns the region down to its matching
    close (removing the whole region keeps the program balanced); a
    brace-neutral line is its own region.  Scaffold lines and bare
    closers are never candidates.
    """
    regions: list[tuple[int, int]] = []
    for index, line in enumerate(lines):
        text = line.strip()
        if not text or any(marker in text for marker in _SCAFFOLD_MARKERS):
            continue
        net = line.count("{") - line.count("}")
        if net < 0:
            continue  # a bare closer belongs to some opener's region
        if net == 0:
            regions.append((index, index))
            continue
        depth = net
        end = None
        for j in range(index + 1, len(lines)):
            depth += lines[j].count("{") - lines[j].count("}")
            if depth <= 0:
                end = j
                break
        if end is not None and not any(
                marker in lines[j]
                for j in range(index, end + 1)
                for marker in _SCAFFOLD_MARKERS):
            regions.append((index, end))
    return sorted(regions, key=lambda span: span[0] - span[1])


def shrink_source(source: str, still_fails, *,
                  max_tests: int = 200) -> tuple[str, int]:
    """Greedy delta-debugging over brace-balanced line regions.

    ``still_fails(text)`` must return True when ``text`` reproduces the
    original failure.  Returns the shrunk source and how many candidate
    programs were tested (bounded by ``max_tests``).
    """
    lines = source.splitlines()
    tests = 0
    progress = True
    while progress and tests < max_tests:
        progress = False
        for start, end in _removable_regions(lines):
            if tests >= max_tests:
                break
            candidate = lines[:start] + lines[end + 1:]
            tests += 1
            if still_fails("\n".join(candidate)):
                lines = candidate
                progress = True
                break  # regions shifted: recompute
    return "\n".join(lines), tests


# -- the fuzz loop -----------------------------------------------------------


@dataclass
class FuzzFailure:
    """One fuzz case that broke the contract."""

    seed: int
    degree: int
    phase: str
    error: str
    source: str
    shrunk_source: str | None = None
    shrink_tests: int = 0

    def artifact(self) -> str:
        """The program to ship (shrunk when shrinking succeeded)."""
        return self.shrunk_source or self.source

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "degree": self.degree,
            "phase": self.phase,
            "error": self.error,
            "source_lines": len(self.source.splitlines()),
            "shrunk_lines": (len(self.shrunk_source.splitlines())
                             if self.shrunk_source else None),
            "shrink_tests": self.shrink_tests,
        }


@dataclass
class FuzzReport:
    """Outcome of one ``run_fuzz`` campaign."""

    seeds: int
    start_seed: int
    degrees: tuple
    packets: int
    cases: int = 0
    failures: list[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        lines = [f"fuzz: {self.cases} programs "
                 f"(seeds {self.start_seed}.."
                 f"{self.start_seed + self.seeds - 1}, "
                 f"degrees {','.join(map(str, self.degrees))}, "
                 f"{self.packets} packets): "
                 f"{'ok' if self.ok else 'FAIL'}"]
        for failure in self.failures:
            shrunk = (f", shrunk {len(failure.source.splitlines())} -> "
                      f"{len(failure.shrunk_source.splitlines())} lines "
                      f"in {failure.shrink_tests} tests"
                      if failure.shrunk_source else "")
            lines.append(f"  seed {failure.seed} D={failure.degree} "
                         f"[{failure.phase}] {failure.error}{shrunk}")
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "seeds": self.seeds,
            "start_seed": self.start_seed,
            "degrees": list(self.degrees),
            "packets": self.packets,
            "cases": self.cases,
            "ok": self.ok,
            "failures": [failure.as_dict() for failure in self.failures],
        }


def _fuzz_case(seed: int, degree: int, packets: int,
               shrink: bool, max_shrink_tests: int) -> FuzzFailure | None:
    """Run (and, on failure, shrink) one fuzz case.

    Module-level and fully determined by its arguments, so a process
    pool can dispatch it by name and any worker produces the same
    answer for the same seed.
    """
    source = random_pps_source(seed)
    try:
        check_program(source, degree, packets=packets, seed=seed)
        return None
    except CheckFailure as exc:
        failure = FuzzFailure(seed=seed, degree=degree, phase=exc.phase,
                              error=str(exc.cause), source=source)
        if shrink:
            signature = exc.signature

            def still_fails(text: str) -> bool:
                try:
                    check_program(text, degree, packets=packets, seed=seed)
                except CheckFailure as candidate:
                    return candidate.signature == signature
                except Exception:
                    return False
                return False

            shrunk, tests = shrink_source(source, still_fails,
                                          max_tests=max_shrink_tests)
            failure.shrink_tests = tests
            if shrunk != source:
                failure.shrunk_source = shrunk
        return failure


def _fuzz_worker(args: tuple) -> FuzzFailure | None:
    """Picklable pool entry point: unpack one :func:`_fuzz_case` call."""
    return _fuzz_case(*args)


def run_fuzz(seeds: int = 50, *, start_seed: int = 0,
             degrees: tuple = (2, 3, 4), packets: int = 24,
             shrink: bool = True, max_shrink_tests: int = 200,
             jobs: int = 1, progress=None) -> FuzzReport:
    """Fuzz ``seeds`` generated programs through the whole contract.

    Every case gets a deterministic degree from ``degrees`` (round
    robin) and a deterministic input stream, so a failing seed printed
    by CI reproduces locally with the same flags.  ``progress`` is an
    optional callback invoked with (seed, failure-or-None).

    ``jobs > 1`` fans the cases over a process pool (``repro fuzz -j``).
    Each case is a pure function of its seed, and results are merged in
    seed order, so the report is identical at any parallelism level —
    only ``progress`` timing changes (it still fires in seed order,
    after the parallel region).
    """
    report = FuzzReport(seeds=seeds, start_seed=start_seed,
                        degrees=tuple(degrees), packets=packets)
    calls = [(start_seed + index,
              report.degrees[index % len(report.degrees)],
              packets, shrink, max_shrink_tests)
             for index in range(seeds)]
    if jobs > 1 and len(calls) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=jobs) as pool:
            outcomes = pool.map(_fuzz_worker, calls)
    else:
        outcomes = (_fuzz_case(*call) for call in calls)
    for call, failure in zip(calls, outcomes):
        report.cases += 1
        if failure is not None:
            report.failures.append(failure)
        if progress is not None:
            progress(call[0], failure)
    return report


# -- verifier self-test: seeded defects --------------------------------------

#: A fixed, hand-written PPS with branches, table state, and live values
#: crossing every cut — the substrate the mutation self-tests corrupt.
SELF_TEST_PPS = """
pipe in_q;
pipe out_q;
readonly memory tbl[16];

pps selfcheck {
    for (;;) {
        int x = pipe_recv(in_q);
        int a = (x * 7) & 255;
        int b = mem_read(tbl, x & 15);
        int c = 0;
        if (a > b) {
            c = (a - b) & 255;
            trace(1, c);
        }
        else {
            c = (a + b) & 255;
            trace(2, c);
        }
        int d = ((c ^ b) + a) & 1023;
        trace(3, d & 7);
        pipe_send(out_q, d);
    }
}
"""


def _mutate_drop_live_var(result):
    """Omit one transmitted variable from a cut's live set."""
    mutated = copy.deepcopy(result)
    for layout in mutated.layouts:
        if not layout.variables:
            continue
        victim = layout.variables[0]
        layout.variables = [reg for reg in layout.variables
                            if reg is not victim]
        layout.live_sets = {target: [reg for reg in regs
                                     if reg is not victim]
                            for target, regs in layout.live_sets.items()}
        layout.slot_of = {reg: slot for reg, slot in layout.slot_of.items()
                          if reg is not victim}
        return mutated
    return None


def _mutate_flip_cut_edge(result):
    """Swap stages 1 and 2 so cut-1 dependences flow backwards."""
    if result.degree < 2:
        return None
    mutated = copy.deepcopy(result)
    flip = {1: 2, 2: 1}
    assignment = mutated.assignment
    assignment.block_stage = {name: flip.get(stage, stage)
                              for name, stage in
                              assignment.block_stage.items()}
    assignment.unit_stage = {unit: flip.get(stage, stage)
                             for unit, stage in
                             assignment.unit_stage.items()}
    return mutated


def _mutate_unbalance_stage(result):
    """Move the heaviest movable unit one stage later and claim every
    cut balanced — a >ε imbalance hiding behind a clean diagnostic."""
    mutated = copy.deepcopy(result)
    model = mutated.model
    assignment = mutated.assignment
    # Unit successors under both dependence and CFG constraints.
    succs: dict[int, set[int]] = {unit: set()
                                  for unit in assignment.unit_stage}
    for edge in model.unit_edges():
        succs[edge.src].add(edge.dst)
    for src_node, dst_node in model.sgraph.edges():
        src_unit = model.unit_of_node(src_node)
        dst_unit = model.unit_of_node(dst_node)
        if src_unit != dst_unit:
            succs[src_unit].add(dst_unit)
    candidates = []
    for unit, stage in assignment.unit_stage.items():
        if stage >= assignment.degree or unit == model.header_unit:
            continue
        if all(assignment.unit_stage[succ] > stage
               for succ in succs[unit] if succ != unit):
            candidates.append((model.unit_weight(unit), unit, stage))
    if not candidates:
        return None
    _, unit, stage = max(candidates)
    assignment.unit_stage[unit] = stage + 1
    for block_name in model.unit_blocks(unit):
        assignment.block_stage[block_name] = stage + 1
    for diag in assignment.diagnostics:
        diag.balanced = True
    return mutated


def _mutate_break_control(result):
    """Point one control-word dispatch case at the wrong block."""
    mutated = copy.deepcopy(result)
    from repro.ir.instructions import SwitchTerm

    for stage in mutated.stages:
        if stage.index == 1 or "stage_recv" not in stage.function.blocks:
            continue
        term = stage.function.block("stage_recv").terminator
        if isinstance(term, SwitchTerm) and term.cases:
            case = min(term.cases)
            original = term.cases[case]
            wrong = next((name for name in stage.function.block_order
                          if name != original), None)
            if wrong is not None:
                term.cases[case] = wrong
                return mutated
    return None


#: The seeded-defect catalogue: name -> mutator(result) -> mutated | None.
DEFECT_MUTATORS = {
    "drop-live-var": _mutate_drop_live_var,
    "flip-cut-edge": _mutate_flip_cut_edge,
    "unbalance-stage": _mutate_unbalance_stage,
    "break-control-object": _mutate_break_control,
}


def seeded_defects(result):
    """Yield (defect name, corrupted deep copy) for each applicable
    mutation; the original ``result`` is never touched."""
    for name, mutate in DEFECT_MUTATORS.items():
        mutated = mutate(result)
        if mutated is not None:
            yield name, mutated


def self_test(degree: int = 3) -> dict:
    """Corrupt a known-good partition each way; the verifier must catch
    every defect.  Returns ``{"missed": [...], "caught": {name: checks}}``.
    """
    module = compile_progen(SELF_TEST_PPS)
    result = pipeline_pps(module, "selfcheck", degree)
    verify_partition(result).raise_if_rejected()  # precondition: clean
    caught: dict[str, list[str]] = {}
    missed: list[str] = []
    applied = 0
    for name, mutated in seeded_defects(result):
        applied += 1
        verdict = verify_partition(mutated)
        if verdict.ok:
            missed.append(name)
        else:
            caught[name] = sorted({finding.check
                                   for finding in verdict.findings})
    if applied < len(DEFECT_MUTATORS):
        skipped = [name for name in DEFECT_MUTATORS
                   if name not in caught and name not in missed]
        missed.extend(skipped)
    return {"missed": missed, "caught": caught}

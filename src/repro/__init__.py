"""repro — an auto-pipelining compiler for packet processing applications.

Reproduction of *"Automatically Partitioning Packet Processing
Applications for Pipelined Architectures"* (Dai, Huang, Li, Harrison —
PLDI 2005): a compiler that partitions a sequential packet processing
stage (PPS) into balanced pipeline stages with minimized live-set
transmission, plus the substrate it needs — a C-like frontend (PPS-C), a
three-address IR with SSA, dependence analysis, push-relabel balanced
minimum cuts, an IXP-style machine model, a functional simulator, and the
NPF IPv4/IP forwarding benchmark applications.

Quickstart::

    import repro

    module = repro.compile_module('''
        pipe in_q;
        pipe out_q;
        pps double {
            for (;;) {
                int x = pipe_recv(in_q);
                pipe_send(out_q, x * 2);
            }
        }
    ''')
    result = repro.pipeline_pps(module, "double", degree=2)

    state = repro.MachineState(module)
    state.feed_pipe("in_q", [1, 2, 3])
    repro.run_pipeline(result.stages, state, iterations=3)
    print(list(state.pipe("out_q").queue))   # 2, 4, 6
"""

from __future__ import annotations

from repro.ir.function import Module
from repro.ir.inline import inline_module
from repro.ir.lowering import lower_program
from repro.ir.optimize import optimize_module
from repro.lang import compile_source
from repro.machine.costs import NN_RING, SCRATCH_RING, SRAM_RING, CostModel
from repro.machine.ixp import IXP2400, IXP2800, NetworkProcessor
from repro.obs import RuntimeReport, Tracer, runtime_report, tracing
from repro.pipeline.liveset import Strategy
from repro.pipeline.replicate import ReplicationResult, replicate_pps
from repro.pipeline.transform import PipelineError, PipelineResult, pipeline_pps
from repro.runtime.equivalence import assert_equivalent, compare, observe
from repro.runtime.scheduler import (
    run_group,
    run_pipeline,
    run_replicas,
    run_sequential,
)
from repro.runtime.state import MachineState

__version__ = "1.0.0"


def compile_module(source: str, name: str = "<module>", *,
                   optimize: bool = True) -> Module:
    """Compile PPS-C source all the way to a pipelining-ready module:
    parse, check, lower, inline, and (by default) optimize."""
    module = lower_program(compile_source(source, name), name)
    inline_module(module)
    if optimize:
        optimize_module(module)
    return module


__all__ = [
    "CostModel",
    "IXP2400",
    "IXP2800",
    "MachineState",
    "Module",
    "NN_RING",
    "NetworkProcessor",
    "PipelineError",
    "PipelineResult",
    "ReplicationResult",
    "RuntimeReport",
    "SCRATCH_RING",
    "SRAM_RING",
    "Strategy",
    "Tracer",
    "__version__",
    "assert_equivalent",
    "compare",
    "compile_module",
    "compile_source",
    "inline_module",
    "lower_program",
    "observe",
    "optimize_module",
    "pipeline_pps",
    "replicate_pps",
    "run_group",
    "run_pipeline",
    "run_replicas",
    "run_sequential",
    "runtime_report",
    "tracing",
]

"""The Scheduler PPS (weighted round-robin over transmit queues).

Every iteration advances the WRR state over the queue-occupancy table and
emits one dequeue decision.  All of its work reads and writes shared flow
state (``sched_state``, ``qlen``) — the PPS-loop-carried dependence the
paper calls out: "Since those two PPSes essentially update the shared flow
state of the traffic, they have inherent PPS loop-carried dependence in
the program.  Consequently, they cannot be effectively pipelined."
"""

from __future__ import annotations

from repro.apps.common import TAG_SCHED

N_QUEUES = 4

SCHEDULER_REGIONS = f"""
memory qlen[{N_QUEUES}];
memory sched_state[{N_QUEUES + 2}];
readonly memory sched_weights[{N_QUEUES}];
"""


def scheduler_source(out_pipe: str = "sched_out") -> str:
    """PPS-C source of the WRR scheduler PPS."""
    return f"""
pipe {out_pipe};
{SCHEDULER_REGIONS}

pps scheduler {{
    for (;;) {{
        // Current position and remaining credit live in shared state.
        int current = mem_read(sched_state, 0);
        int credit = mem_read(sched_state, 1);
        int chosen = -1;
        int scanned = 0;
        while (scanned < {N_QUEUES} && chosen < 0) {{
            int occupancy = mem_read(qlen, current);
            if (occupancy > 0) {{
                if (credit > 0) {{
                    chosen = current;
                }}
                else {{
                    // Credit exhausted: recharge and move on.
                    current = (current + 1) & {N_QUEUES - 1};
                    credit = mem_read(sched_weights, current);
                    scanned = scanned + 1;
                }}
            }}
            else {{
                current = (current + 1) & {N_QUEUES - 1};
                credit = mem_read(sched_weights, current);
                scanned = scanned + 1;
            }}
        }}
        if (chosen >= 0) {{
            credit = credit - 1;
            int occupancy2 = mem_read(qlen, chosen);
            mem_write(qlen, chosen, occupancy2 - 1);
            mem_write(sched_state, 2 + chosen,
                      mem_read(sched_state, 2 + chosen) + 1);
            trace({TAG_SCHED}, chosen);
            pipe_send({out_pipe}, chosen);
        }}
        mem_write(sched_state, 0, current);
        mem_write(sched_state, 1, credit);
    }}
}}
"""

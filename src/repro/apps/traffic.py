"""Synthetic traffic generation (host side).

Builds POS-encapsulated IPv4/IPv6 packets with valid headers and
checksums.  The evaluation uses minimum-size packets (48 bytes on POS),
"as this case places the most stringent performance requirement on the
application" (paper §4).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.apps.common import (
    MIN_PACKET_BYTES,
    POS_HEADER_BYTES,
    PPP_IPV4,
    PPP_IPV6,
)


def ipv4_checksum(header: bytes) -> int:
    """RFC 791 header checksum of ``header`` (checksum field zeroed)."""
    total = 0
    for i in range(0, len(header), 2):
        total += (header[i] << 8) | header[i + 1]
    while total > 0xFFFF:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def make_ipv4_packet(src: int, dst: int, *, total_bytes: int = MIN_PACKET_BYTES,
                     ttl: int = 64, tos: int = 0, ident: int = 0,
                     proto: int = 17, corrupt_checksum: bool = False) -> bytes:
    """A POS-encapsulated IPv4 packet of exactly ``total_bytes``."""
    ip_total = total_bytes - POS_HEADER_BYTES
    if ip_total < 20:
        raise ValueError("packet too small for an IPv4 header")
    header = bytearray(20)
    header[0] = 0x45  # version 4, IHL 5
    header[1] = tos & 0xFF
    header[2:4] = ip_total.to_bytes(2, "big")
    header[4:6] = (ident & 0xFFFF).to_bytes(2, "big")
    header[6:8] = (0).to_bytes(2, "big")  # no fragmentation
    header[8] = ttl & 0xFF
    header[9] = proto & 0xFF
    header[12:16] = (src & 0xFFFFFFFF).to_bytes(4, "big")
    header[16:20] = (dst & 0xFFFFFFFF).to_bytes(4, "big")
    checksum = ipv4_checksum(bytes(header))
    if corrupt_checksum:
        checksum ^= 0x5555
    header[10:12] = checksum.to_bytes(2, "big")
    payload = bytes((i * 37 + 11) & 0xFF for i in range(ip_total - 20))
    pos = bytes([0xFF, 0x03]) + PPP_IPV4.to_bytes(2, "big")
    return pos + bytes(header) + payload


def make_ipv6_packet(src_top64: int, dst_top64: int, *,
                     total_bytes: int = 64, hop_limit: int = 64,
                     next_header: int = 17,
                     traffic_class: int = 0) -> bytes:
    """A POS-encapsulated IPv6 packet (low 64 address bits are synthetic)."""
    ip_total = total_bytes - POS_HEADER_BYTES
    if ip_total < 40:
        raise ValueError("packet too small for an IPv6 header")
    payload_len = ip_total - 40
    header = bytearray(40)
    header[0] = 0x60 | ((traffic_class >> 4) & 0x0F)
    header[1] = (traffic_class << 4) & 0xF0
    header[4:6] = payload_len.to_bytes(2, "big")
    header[6] = next_header & 0xFF
    header[7] = hop_limit & 0xFF
    header[8:16] = (src_top64 & ((1 << 64) - 1)).to_bytes(8, "big")
    header[16:24] = (0x1234_5678_9ABC_DEF0).to_bytes(8, "big")
    header[24:32] = (dst_top64 & ((1 << 64) - 1)).to_bytes(8, "big")
    header[32:40] = (0x0FED_CBA9_8765_4321).to_bytes(8, "big")
    payload = bytes((i * 53 + 7) & 0xFF for i in range(payload_len))
    pos = bytes([0xFF, 0x03]) + PPP_IPV6.to_bytes(2, "big")
    return pos + bytes(header) + payload


@dataclass
class TrafficConfig:
    """Knobs for a synthetic traffic stream."""

    seed: int = 1
    count: int = 200
    min_size_only: bool = True
    bad_fraction: float = 0.0  # fraction of malformed packets


class TrafficGenerator:
    """Seeded streams of routable packets."""

    def __init__(self, config: TrafficConfig,
                 ipv4_prefixes: list[tuple[int, int]] | None = None,
                 ipv6_prefixes: list[tuple[int, int]] | None = None):
        self.config = config
        self.rng = random.Random(config.seed)
        self.ipv4_prefixes = ipv4_prefixes or [(0x0A000000, 8)]
        self.ipv6_prefixes = ipv6_prefixes or [(0x2001_0db8_0000_0000, 32)]

    def _ipv4_address(self) -> int:
        prefix, plen = self.rng.choice(self.ipv4_prefixes)
        host = self.rng.getrandbits(32 - plen) if plen < 32 else 0
        return (prefix & (0xFFFFFFFF << (32 - plen))) | host

    def _ipv6_address(self) -> int:
        prefix, plen = self.rng.choice(self.ipv6_prefixes)
        host = self.rng.getrandbits(64 - plen) if plen < 64 else 0
        return (prefix & (((1 << 64) - 1) << (64 - plen))) | host

    def _size(self) -> int:
        if self.config.min_size_only:
            return MIN_PACKET_BYTES
        return self.rng.choice([MIN_PACKET_BYTES, 64, 80, 128])

    def ipv4_stream(self) -> list[bytes]:
        packets = []
        for index in range(self.config.count):
            corrupt = self.rng.random() < self.config.bad_fraction
            packets.append(make_ipv4_packet(
                src=0xC0A80000 | (index & 0xFFFF),
                dst=self._ipv4_address(),
                total_bytes=self._size(),
                ttl=self.rng.randint(2, 64),
                ident=index,
                corrupt_checksum=corrupt,
            ))
        return packets

    def ipv6_stream(self) -> list[bytes]:
        packets = []
        for index in range(self.config.count):
            packets.append(make_ipv6_packet(
                src_top64=0xFE80_0000_0000_0000 | index,
                dst_top64=self._ipv6_address(),
                total_bytes=max(self._size(), 64),
                hop_limit=self.rng.randint(2, 64),
            ))
        return packets

    def mixed_stream(self) -> list[bytes]:
        v4 = self.ipv4_stream()
        v6 = self.ipv6_stream()
        mixed = []
        for a, b in zip(v4, v6):
            mixed.append(a)
            mixed.append(b)
        return mixed[: self.config.count]

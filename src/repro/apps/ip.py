"""The combined IP forwarding PPS (NPF IP forwarding benchmark, paper §4).

One PPS with two code paths — IPv4 and IPv6 — selected by the PPP
protocol id, exactly like the paper's IP PPS ("the IP PPS consisting of
two code paths[,] one for the IPv4 traffic and the other for the IPv6
traffic").
"""

from __future__ import annotations

from repro.apps.common import POS_HEADER_BYTES, PPP_IPV4, PPP_IPV6, TAG_DROP_PROTO
from repro.apps.ipv4 import IPV4_HELPERS, IPV4_REGIONS, ipv4_body
from repro.apps.ipv6 import IPV6_REGIONS, ipv6_body


def ip_source(in_pipe: str = "ip_in", out_pipe: str = "ip_out") -> str:
    """PPS-C source of the combined IPv4/IPv6 forwarding PPS."""
    v4 = ipv4_body("h", "hbase", in_pipe, out_pipe, indent="            ")
    v6 = ipv6_body("h", "hbase", out_pipe, indent="            ")
    return f"""
pipe {in_pipe};
pipe {out_pipe};
{IPV4_REGIONS}
{IPV6_REGIONS}
{IPV4_HELPERS}

pps ip {{
    for (;;) {{
        int h = pipe_recv({in_pipe});
        int proto = pkt_load_u16(h, 2);
        int hbase = {POS_HEADER_BYTES};
        if (proto == {PPP_IPV4}) {{
{v4}
        }}
        else if (proto == {PPP_IPV6}) {{
{v6}
        }}
        else {{
            pkt_free(h);
            trace({TAG_DROP_PROTO}, proto);
        }}
    }}
}}
"""

"""The Queue Manager (QM) PPS.

Maintains per-class packet queues in shared memory: enqueue requests
arrive from the forwarding PPS, dequeue requests from the scheduler, and
dequeued packets go to TX.  Like the Scheduler, every iteration updates
shared flow state (ring indices, occupancy counters), so the dependence
graph collapses and pipelining cannot help (paper §4).
"""

from __future__ import annotations

from repro.apps.common import META_CLASS, TAG_QM_DEQ, TAG_QM_DROP, TAG_QM_ENQ

N_QUEUES = 4
QUEUE_CAPACITY = 64

QM_REGIONS = f"""
memory qm_rings[{N_QUEUES * QUEUE_CAPACITY}];
memory qm_state[{N_QUEUES * 2}];
memory qlen[{N_QUEUES}];
"""


def qm_source(enq_pipe: str = "qm_enq", deq_pipe: str = "qm_deq",
              out_pipe: str = "qm_out", *, declare_qlen: bool = True) -> str:
    """PPS-C source of the QM PPS.

    ``declare_qlen`` is disabled when the Scheduler PPS (which declares
    the shared ``qlen`` region itself) lives in the same program.
    """
    regions = QM_REGIONS if declare_qlen else QM_REGIONS.replace(
        f"memory qlen[{N_QUEUES}];\n", "")
    return f"""
pipe {enq_pipe};
pipe {deq_pipe};
pipe {out_pipe};
{regions}

pps qm {{
    for (;;) {{
        // Service enqueue requests first, then dequeue decisions.
        if (pipe_empty({enq_pipe}) == 0) {{
            int h = pipe_recv({enq_pipe});
            int qid = (pkt_meta_get(h, {META_CLASS}) >> 16) & {N_QUEUES - 1};
            int head = mem_read(qm_state, qid * 2);
            int tail = mem_read(qm_state, qid * 2 + 1);
            int occupancy = tail - head;
            if (occupancy >= {QUEUE_CAPACITY}) {{
                // Tail drop.
                pkt_free(h);
                trace({TAG_QM_DROP}, qid);
            }}
            else {{
                int slot = tail & {QUEUE_CAPACITY - 1};
                mem_write(qm_rings, qid * {QUEUE_CAPACITY} + slot, h);
                mem_write(qm_state, qid * 2 + 1, tail + 1);
                mem_write(qlen, qid, occupancy + 1);
                trace({TAG_QM_ENQ}, qid);
            }}
        }}
        else if (pipe_empty({deq_pipe}) == 0) {{
            int qid = pipe_recv({deq_pipe});
            int head = mem_read(qm_state, qid * 2);
            int tail = mem_read(qm_state, qid * 2 + 1);
            if (head < tail) {{
                int slot = head & {QUEUE_CAPACITY - 1};
                int h = mem_read(qm_rings, qid * {QUEUE_CAPACITY} + slot);
                mem_write(qm_state, qid * 2, head + 1);
                mem_write(qlen, qid, tail - head - 1);
                trace({TAG_QM_DEQ}, qid);
                pipe_send({out_pipe}, h);
            }}
        }}
    }}
}}
"""

"""The packet receive (RX) PPS.

Reassembles mpackets from the media interface into packet buffers,
validates the POS encapsulation, annotates metadata, and hands packets to
the forwarding pipe.

Structure matters for pipelinability: the media-interface dequeue order is
a serially-ordered resource, so *all* ``rbuf_next`` calls of an iteration
are fetched up front (fast-path frames are at most two mpackets — larger
frames are drained and dropped).  The dominant work — the unrolled 48-byte
fast-path copy and the byte loops — only reads the fetched elements and is
free to spread across pipeline stages.
"""

from __future__ import annotations

from repro.apps.common import (
    META_IN_PORT,
    META_LEN,
    META_SEQ,
    MIN_PACKET_BYTES,
    PACKET_BUFFER_BYTES,
    PPP_IPV4,
    PPP_IPV6,
    TAG_RX_ERR,
    TAG_RX_OK,
    unrolled_copy_rbuf_to_pkt,
)


def rx_source(port: int = 0, out_pipe: str = "rx_out") -> str:
    """PPS-C source of the RX PPS reading from device ``port``."""
    copy_fast = unrolled_copy_rbuf_to_pkt("h", "elem", MIN_PACKET_BYTES)
    return f"""
pipe {out_pipe};

pps rx {{
    int seq = 0;
    for (;;) {{
        // Fetch the whole frame first: one mpacket, or two on the slow
        // path.  Oversized frames are drained here and dropped.
        int elem = rbuf_next({port});
        seq = (seq + 1) & 0xFFFF;
        int status = rbuf_status(elem);
        int elem2 = 0;
        int status2 = 0;
        int drained = 0;
        if ((status & 2) == 0) {{
            elem2 = rbuf_next({port});
            status2 = rbuf_status(elem2);
            while ((status2 & 2) == 0) {{
                // Frame longer than two mpackets: drain it.
                rbuf_free(elem2);
                elem2 = rbuf_next({port});
                status2 = rbuf_status(elem2);
                drained = drained + 1;
            }}
        }}
        int inport = (status >> 2) & 0x3F;
        int mlen = (status >> 8) & 0xFFF;
        if (drained > 0) {{
            rbuf_free(elem);
            rbuf_free(elem2);
            trace({TAG_RX_ERR} + 1, seq);
            continue;
        }}
        if ((status & 1) == 0) {{
            // Missing SOP: resynchronize by dropping the mpacket(s).
            rbuf_free(elem);
            if (elem2 != 0) {{
                rbuf_free(elem2);
            }}
            trace({TAG_RX_ERR} + 2, seq);
            continue;
        }}
        if (mlen < {MIN_PACKET_BYTES}) {{
            rbuf_free(elem);
            if (elem2 != 0) {{
                rbuf_free(elem2);
            }}
            trace({TAG_RX_ERR} + 3, seq);
            continue;
        }}
        int h = pkt_alloc({PACKET_BUFFER_BYTES});
        // Fast path: the minimum-size frame, fully unrolled.
{copy_fast}
        if (mlen > {MIN_PACKET_BYTES}) {{
            for (int i = {MIN_PACKET_BYTES}; i < mlen; i++) {{
                pkt_store(h, i, rbuf_load(elem, i));
            }}
        }}
        int total = mlen;
        rbuf_free(elem);
        if (elem2 != 0) {{
            int mlen2 = (status2 >> 8) & 0xFFF;
            for (int j = 0; j < mlen2; j++) {{
                pkt_store(h, total + j, rbuf_load(elem2, j));
            }}
            total = total + mlen2;
            rbuf_free(elem2);
        }}
        // POS/PPP encapsulation check: FF 03 <protocol>.
        int flag = pkt_load(h, 0);
        int ctrl = pkt_load(h, 1);
        int proto = pkt_load_u16(h, 2);
        if (flag != 0xFF) {{
            pkt_free(h);
            trace({TAG_RX_ERR} + 4, seq);
            continue;
        }}
        if (ctrl != 0x03) {{
            pkt_free(h);
            trace({TAG_RX_ERR} + 5, seq);
            continue;
        }}
        if (proto != {PPP_IPV4} && proto != {PPP_IPV6}) {{
            pkt_free(h);
            trace({TAG_RX_ERR} + 6, seq);
            continue;
        }}
        pkt_meta_set(h, {META_LEN}, total);
        pkt_meta_set(h, {META_IN_PORT}, inport);
        pkt_meta_set(h, {META_SEQ}, seq);
        trace({TAG_RX_OK}, total);
        pipe_send({out_pipe}, h);
    }}
}}
"""

"""The IPv4 forwarding PPS (NPF IPv4 forwarding benchmark, paper §4).

Implements the RFC 1812 fast-path receive checks, full header checksum
verification (unrolled), longest-prefix-match via the 16-8-8 trie of
:mod:`repro.apps.tables`, TTL decrement with incremental checksum update
(RFC 1624), DSCP classification, and flow hashing.  Compute dominates the
live set by a wide margin, which is why this PPS keeps scaling with the
pipelining degree in the paper's Figure 19.
"""

from __future__ import annotations

from repro.apps.common import (
    META_CLASS,
    META_LEN,
    META_NEXT_HOP,
    META_OUT_PORT,
    POS_HEADER_BYTES,
    PPP_IPV4,
    TAG_DROP_CHECKSUM,
    TAG_DROP_FRAG,
    TAG_DROP_HEADER,
    TAG_DROP_LEN,
    TAG_DROP_MARTIAN,
    TAG_DROP_NOROUTE,
    TAG_DROP_PROTO,
    TAG_DROP_TTL,
    TAG_DROP_VERSION,
    TAG_FWD,
    unrolled_checksum_words,
)

#: Region names the IPv4 PPS expects (sizes chosen for the benchmarks).
IPV4_REGIONS = """
readonly memory rt_l1[65536];
readonly memory rt_nodes[16384];
readonly memory class_map[64];
readonly memory acl_rules[64];
"""

#: Number of (prefix, mask, action) ACL rules matched on the fast path.
ACL_RULES = 8


def _unrolled_acl(indent: str) -> str:
    """Unrolled first-match ACL over ``acl_rules``: rule i occupies words
    [4i..4i+3] = (value, mask, match-on-src flag, action)."""
    lines = [f"{indent}int acl_action = 0;", f"{indent}int acl_hit = 0;"]
    for rule in range(ACL_RULES):
        base = rule * 4
        lines.extend([
            f"{indent}if (acl_hit == 0) {{",
            f"{indent}    int acl_val{rule} = mem_read(acl_rules, {base});",
            f"{indent}    int acl_mask{rule} = mem_read(acl_rules, {base + 1});",
            f"{indent}    int acl_src{rule} = mem_read(acl_rules, {base + 2});",
            f"{indent}    int acl_subject{rule} = dst;",
            f"{indent}    if (acl_src{rule} != 0) {{",
            f"{indent}        acl_subject{rule} = src;",
            f"{indent}    }}",
            f"{indent}    if ((acl_subject{rule} & acl_mask{rule}) == acl_val{rule}"
            f" && acl_mask{rule} != 0) {{",
            f"{indent}        acl_action = mem_read(acl_rules, {base + 3});",
            f"{indent}        acl_hit = 1;",
            f"{indent}    }}",
            f"{indent}}}",
        ])
    return "\n".join(lines)

#: Helper functions shared by the v4 forwarding paths (inlined).
IPV4_HELPERS = """
int csum_fold(int sum)
{
    sum = (sum & 0xFFFF) + ((sum >> 16) & 0xFFFF);
    sum = (sum & 0xFFFF) + ((sum >> 16) & 0xFFFF);
    return sum;
}

int is_martian_src(int src)
{
    int top = (src >> 24) & 0xFF;
    if (top == 0) return 1;                     // 0.0.0.0/8
    if (top == 127) return 1;                   // loopback
    if (top >= 224) return 1;                   // multicast and class E
    if (src == -1) return 1;                    // 255.255.255.255
    if (top == 169 && ((src >> 16) & 0xFF) == 254) return 1;  // link local
    return 0;
}

int is_bad_dst(int dst)
{
    int top = (dst >> 24) & 0xFF;
    if (top == 0) return 1;
    if (top == 127) return 1;
    if (dst == -1) return 1;
    if (top >= 240) return 1;                   // class E
    return 0;
}
"""


def ipv4_body(handle: str, base_reg: str, in_pipe: str, out_pipe: str,
              *, indent: str = "        ") -> str:
    """The shared IPv4 validation/lookup/update path (PPS-C text).

    Assumes ``handle`` holds the packet and ``base_reg`` the IP header
    offset; ends with either a drop (``pkt_free`` + ``continue``) or a
    ``pipe_send`` to ``out_pipe``.
    """
    checksum = unrolled_checksum_words("sum", handle, 0, 10, indent=indent)
    # The unrolled loads need the runtime header base, not a constant 0.
    checksum = checksum.replace(f"pkt_load_u16({handle}, 0 +",
                                f"pkt_load_u16({handle}, {base_reg} +")
    acl = _unrolled_acl(indent)
    return f"""
{indent}int vihl = pkt_load({handle}, {base_reg});
{indent}int version = (vihl >> 4) & 0xF;
{indent}if (version != 4) {{
{indent}    pkt_free({handle});
{indent}    trace({TAG_DROP_VERSION}, vihl);
{indent}    continue;
{indent}}}
{indent}int ihl = vihl & 0xF;
{indent}if (ihl < 5) {{
{indent}    pkt_free({handle});
{indent}    trace({TAG_DROP_HEADER}, ihl);
{indent}    continue;
{indent}}}
{indent}int hdr_len = ihl * 4;
{indent}int pkt_bytes = pkt_meta_get({handle}, {META_LEN});
{indent}if (pkt_bytes < {base_reg} + hdr_len) {{
{indent}    pkt_free({handle});
{indent}    trace({TAG_DROP_LEN}, pkt_bytes);
{indent}    continue;
{indent}}}
{indent}int total_len = pkt_load_u16({handle}, {base_reg} + 2);
{indent}if (total_len < hdr_len) {{
{indent}    pkt_free({handle});
{indent}    trace({TAG_DROP_LEN} + 100, total_len);
{indent}    continue;
{indent}}}
{indent}if (total_len + {base_reg} > pkt_bytes) {{
{indent}    pkt_free({handle});
{indent}    trace({TAG_DROP_LEN} + 200, total_len);
{indent}    continue;
{indent}}}
{indent}// Header checksum verification: 10 words unrolled plus options.
{indent}int sum = 0;
{checksum}
{indent}if (ihl > 5) {{
{indent}    for (int opt = 20; opt < hdr_len; opt += 2) {{
{indent}        sum = sum + pkt_load_u16({handle}, {base_reg} + opt);
{indent}    }}
{indent}}}
{indent}sum = csum_fold(sum);
{indent}if (sum != 0xFFFF) {{
{indent}    pkt_free({handle});
{indent}    trace({TAG_DROP_CHECKSUM}, sum);
{indent}    continue;
{indent}}}
{indent}int ttl = pkt_load({handle}, {base_reg} + 8);
{indent}if (ttl <= 1) {{
{indent}    pkt_free({handle});
{indent}    trace({TAG_DROP_TTL}, ttl);
{indent}    continue;
{indent}}}
{indent}int frag = pkt_load_u16({handle}, {base_reg} + 6);
{indent}if ((frag & 0x3FFF) != 0) {{
{indent}    // Fragments go to the slow path (not modelled): count and drop.
{indent}    pkt_free({handle});
{indent}    trace({TAG_DROP_FRAG}, frag);
{indent}    continue;
{indent}}}
{indent}int src = pkt_load_u32({handle}, {base_reg} + 12);
{indent}if (is_martian_src(src)) {{
{indent}    pkt_free({handle});
{indent}    trace({TAG_DROP_MARTIAN}, src);
{indent}    continue;
{indent}}}
{indent}int dst = pkt_load_u32({handle}, {base_reg} + 16);
{indent}if (is_bad_dst(dst)) {{
{indent}    pkt_free({handle});
{indent}    trace({TAG_DROP_MARTIAN} + 100, dst);
{indent}    continue;
{indent}}}
{indent}// Longest-prefix match: 16-8-8 multibit trie.
{indent}int entry = mem_read(rt_l1, (dst >> 16) & 0xFFFF);
{indent}int nexthop_entry = 0;
{indent}if ((entry & 0x1000000) != 0) {{
{indent}    nexthop_entry = entry;
{indent}}}
{indent}else if ((entry & 0x2000000) != 0) {{
{indent}    int block2 = (entry & 0xFFFF) * 256;
{indent}    int entry2 = mem_read(rt_nodes, block2 + ((dst >> 8) & 0xFF));
{indent}    if ((entry2 & 0x1000000) != 0) {{
{indent}        nexthop_entry = entry2;
{indent}    }}
{indent}    else if ((entry2 & 0x2000000) != 0) {{
{indent}        int block3 = (entry2 & 0xFFFF) * 256;
{indent}        int entry3 = mem_read(rt_nodes, block3 + (dst & 0xFF));
{indent}        if ((entry3 & 0x1000000) != 0) {{
{indent}            nexthop_entry = entry3;
{indent}        }}
{indent}    }}
{indent}}}
{indent}if (nexthop_entry == 0) {{
{indent}    pkt_free({handle});
{indent}    trace({TAG_DROP_NOROUTE}, dst);
{indent}    continue;
{indent}}}
{indent}// Unicast reverse-path forwarding: the source must be routable.
{indent}int rpf_entry = mem_read(rt_l1, (src >> 16) & 0xFFFF);
{indent}int rpf_ok = 0;
{indent}if ((rpf_entry & 0x1000000) != 0) {{
{indent}    rpf_ok = 1;
{indent}}}
{indent}else if ((rpf_entry & 0x2000000) != 0) {{
{indent}    int rpf_b2 = (rpf_entry & 0xFFFF) * 256;
{indent}    int rpf_e2 = mem_read(rt_nodes, rpf_b2 + ((src >> 8) & 0xFF));
{indent}    if ((rpf_e2 & 0x1000000) != 0) {{
{indent}        rpf_ok = 1;
{indent}    }}
{indent}    else if ((rpf_e2 & 0x2000000) != 0) {{
{indent}        int rpf_b3 = (rpf_e2 & 0xFFFF) * 256;
{indent}        int rpf_e3 = mem_read(rt_nodes, rpf_b3 + (src & 0xFF));
{indent}        if ((rpf_e3 & 0x1000000) != 0) {{
{indent}            rpf_ok = 1;
{indent}        }}
{indent}    }}
{indent}}}
{indent}if (rpf_ok == 0) {{
{indent}    pkt_free({handle});
{indent}    trace({TAG_DROP_MARTIAN} + 200, src);
{indent}    continue;
{indent}}}
{acl}
{indent}if (acl_action == 2) {{
{indent}    // Deny rule.
{indent}    pkt_free({handle});
{indent}    trace({TAG_DROP_MARTIAN} + 300, dst);
{indent}    continue;
{indent}}}
{indent}// 5-tuple flow hash (L4 ports are valid for UDP/TCP fast path).
{indent}int l4_sport = 0;
{indent}int l4_dport = 0;
{indent}int proto_id = pkt_load({handle}, {base_reg} + 9);
{indent}if (proto_id == 6 || proto_id == 17) {{
{indent}    l4_sport = pkt_load_u16({handle}, {base_reg} + hdr_len);
{indent}    l4_dport = pkt_load_u16({handle}, {base_reg} + hdr_len + 2);
{indent}}}
{indent}int tuple_hash = hash32(src ^ (dst << 1));
{indent}tuple_hash = hash32(tuple_hash ^ (l4_sport << 16) ^ l4_dport);
{indent}tuple_hash = tuple_hash ^ (proto_id * 0x9E3779);
{indent}// TTL decrement with RFC 1624 incremental checksum update.
{indent}pkt_store({handle}, {base_reg} + 8, ttl - 1);
{indent}int old_check = pkt_load_u16({handle}, {base_reg} + 10);
{indent}int new_check = old_check + 0x100;
{indent}new_check = (new_check & 0xFFFF) + (new_check >> 16);
{indent}pkt_store_u16({handle}, {base_reg} + 10, new_check);
{indent}// DSCP classification (with remark) and class selection.
{indent}int tos = pkt_load({handle}, {base_reg} + 1);
{indent}int dscp = (tos >> 2) & 0x3F;
{indent}int traffic_class = mem_read(class_map, dscp);
{indent}if (acl_action == 3) {{
{indent}    // Remark rule: rewrite DSCP to best effort, fix the checksum.
{indent}    int new_tos = tos & 0x03;
{indent}    pkt_store({handle}, {base_reg} + 1, new_tos);
{indent}    int rem_check = pkt_load_u16({handle}, {base_reg} + 10);
{indent}    rem_check = rem_check + (tos - new_tos);
{indent}    rem_check = (rem_check & 0xFFFF) + (rem_check >> 16);
{indent}    pkt_store_u16({handle}, {base_reg} + 10, rem_check);
{indent}    traffic_class = 0;
{indent}}}
{indent}int flow = tuple_hash;
{indent}pkt_meta_set({handle}, {META_CLASS}, (traffic_class << 16) | (flow & 0xFFFF));
{indent}pkt_meta_set({handle}, {META_OUT_PORT}, (nexthop_entry >> 16) & 0xFF);
{indent}pkt_meta_set({handle}, {META_NEXT_HOP}, nexthop_entry & 0xFFFF);
{indent}trace({TAG_FWD}, dst);
{indent}pipe_send({out_pipe}, {handle});
"""


def ipv4_source(in_pipe: str = "ipv4_in", out_pipe: str = "ipv4_out") -> str:
    """PPS-C source of the standalone IPv4 forwarding PPS."""
    body = ipv4_body("h", "hbase", in_pipe, out_pipe)
    return f"""
pipe {in_pipe};
pipe {out_pipe};
{IPV4_REGIONS}
{IPV4_HELPERS}

pps ipv4 {{
    for (;;) {{
        int h = pipe_recv({in_pipe});
        int proto = pkt_load_u16(h, 2);
        if (proto != {PPP_IPV4}) {{
            pkt_free(h);
            trace({TAG_DROP_PROTO}, proto);
            continue;
        }}
        int hbase = {POS_HEADER_BYTES};
{body}
    }}
}}
"""

"""The packet transmit (TX) PPS.

Segments outbound packets into mpackets and commits them to the media
interface.  The minimum-size path (one 48-byte mpacket) is fully unrolled;
frames up to two mpackets are handled with a second, guarded segment, and
anything larger is counted and dropped (slow path, out of the fast-path
model).  Commit order is wire order, so the two ``tbuf_commit`` sites sit
adjacent at the end of the iteration.
"""

from __future__ import annotations

from repro.apps.common import (
    MAX_PACKET_BYTES,
    META_LEN,
    META_OUT_PORT,
    META_SEQ,
    MIN_PACKET_BYTES,
    TAG_TX,
    TAG_TX_ERR,
    unrolled_copy_pkt_to_tbuf,
)

_MPACKET = 64


def tx_source(in_pipe: str = "tx_in") -> str:
    """PPS-C source of the TX PPS consuming from ``in_pipe``."""
    copy_fast = unrolled_copy_pkt_to_tbuf("t1", "h", MIN_PACKET_BYTES)
    return f"""
pipe {in_pipe};

pps tx {{
    for (;;) {{
        int h = pipe_recv({in_pipe});
        int len = pkt_meta_get(h, {META_LEN});
        int port = pkt_meta_get(h, {META_OUT_PORT});
        int seq = pkt_meta_get(h, {META_SEQ});
        if (len < {MIN_PACKET_BYTES} || len > {MAX_PACKET_BYTES}) {{
            pkt_free(h);
            trace({TAG_TX_ERR}, len);
            continue;
        }}
        int first_len = len;
        if (first_len > {_MPACKET}) {{
            first_len = {_MPACKET};
        }}
        int t1 = tbuf_alloc(port);
        // Minimum-size frame: fully unrolled copy.
{copy_fast}
        if (first_len > {MIN_PACKET_BYTES}) {{
            for (int i = {MIN_PACKET_BYTES}; i < first_len; i++) {{
                tbuf_store(t1, i, pkt_load(h, i));
            }}
        }}
        int t2 = 0;
        int rest = len - first_len;
        if (rest > 0) {{
            t2 = tbuf_alloc(port);
            for (int j = 0; j < rest; j++) {{
                tbuf_store(t2, j, pkt_load(h, {_MPACKET} + j));
            }}
        }}
        // Status words: sop | eop<<1 | port<<2 | len<<8.
        int eop1 = 2;
        if (rest > 0) {{
            eop1 = 0;
        }}
        int status1 = 1 | eop1 | ((port & 0x3F) << 2) | (first_len << 8);
        tbuf_commit(t1, status1);
        if (rest > 0) {{
            int status2 = 2 | ((port & 0x3F) << 2) | (rest << 8);
            tbuf_commit(t2, status2);
        }}
        pkt_free(h);
        trace({TAG_TX}, seq);
    }}
}}
"""

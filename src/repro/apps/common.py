"""Shared conventions of the NPF-style applications.

Packet layout: every packet carries a 4-byte POS/PPP encapsulation header
(``FF 03`` + 16-bit protocol id) followed by the IP header.  Minimum-size
POS packets are 48 bytes (the paper's worst-case traffic).

Metadata keys and trace tags are the cross-PPS ABI: RX annotates packets,
the forwarding PPSes route them, TX consumes them.
"""

from __future__ import annotations

# -- packet geometry -----------------------------------------------------------

POS_HEADER_BYTES = 4
PPP_IPV4 = 0x0021
PPP_IPV6 = 0x0057
MIN_PACKET_BYTES = 48
MAX_PACKET_BYTES = 128  # two mpackets; larger frames take the slow path
PACKET_BUFFER_BYTES = 256

# -- metadata keys -----------------------------------------------------------------

META_LEN = 1
META_IN_PORT = 2
META_OUT_PORT = 3
META_NEXT_HOP = 4
META_SEQ = 5
META_CLASS = 6

# -- trace tags (per-PPS event counters) ----------------------------------------------

TAG_RX_OK = 10
TAG_RX_ERR = 11

TAG_FWD = 30
TAG_DROP_PROTO = 31
TAG_DROP_VERSION = 32
TAG_DROP_HEADER = 33
TAG_DROP_CHECKSUM = 34
TAG_DROP_TTL = 35
TAG_DROP_FRAG = 36
TAG_DROP_MARTIAN = 37
TAG_DROP_NOROUTE = 38
TAG_DROP_LEN = 39

TAG_FWD6 = 50
TAG_DROP6_HOPLIMIT = 51
TAG_DROP6_MARTIAN = 52
TAG_DROP6_NOROUTE = 53
TAG_DROP6_EXT = 54

TAG_TX = 60
TAG_TX_ERR = 61

TAG_SCHED = 70
TAG_QM_ENQ = 80
TAG_QM_DEQ = 81
TAG_QM_DROP = 82


def unrolled_copy_pkt_to_pkt(dst: str, src: str, count: int,
                             dst_base: int = 0, src_base: int = 0,
                             indent: str = "        ") -> str:
    """PPS-C text: copy ``count`` bytes between packet buffers, unrolled."""
    lines = [
        f"{indent}pkt_store({dst}, {dst_base + i}, pkt_load({src}, {src_base + i}));"
        for i in range(count)
    ]
    return "\n".join(lines)


def unrolled_copy_rbuf_to_pkt(handle: str, elem: str, count: int,
                              indent: str = "        ") -> str:
    """PPS-C text: copy ``count`` bytes from an rbuf element to a packet."""
    lines = [
        f"{indent}pkt_store({handle}, {i}, rbuf_load({elem}, {i}));"
        for i in range(count)
    ]
    return "\n".join(lines)


def unrolled_copy_pkt_to_tbuf(elem: str, handle: str, count: int,
                              pkt_base: int = 0, tbuf_base: int = 0,
                              indent: str = "        ") -> str:
    """PPS-C text: copy ``count`` bytes from a packet to a tbuf element."""
    lines = [
        f"{indent}tbuf_store({elem}, {tbuf_base + i}, "
        f"pkt_load({handle}, {pkt_base + i}));"
        for i in range(count)
    ]
    return "\n".join(lines)


def unrolled_checksum_words(var: str, handle: str, base: int, words: int,
                            indent: str = "        ") -> str:
    """PPS-C text: sum ``words`` big-endian 16-bit words into ``var``."""
    lines = [
        f"{indent}{var} = {var} + pkt_load_u16({handle}, {base} + {2 * i});"
        for i in range(words)
    ]
    return "\n".join(lines)

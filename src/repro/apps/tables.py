"""Route table construction (host side).

The forwarding PPSes look routes up in multibit tries stored in readonly
memory regions:

* **IPv4**: a 16-8-8 trie.  Level 1 is a 65536-entry array indexed by the
  top 16 destination bits; levels 2 and 3 are 256-entry blocks allocated
  from the ``rt_nodes`` region.
* **IPv6**: an 8-bit-stride trie over the top 64 bits of the destination,
  blocks allocated from ``rt6_nodes`` (block 0 is the root).

Entry encoding (one 32-bit word)::

    bit 24          leaf flag
    bit 25          pointer flag
    bits 16-23      output port          (leaf)
    bits 0-15       next-hop id          (leaf)
    bits 0-15       child block index    (pointer)

A zero entry means "no route".  Prefixes are installed with standard
prefix expansion; longer prefixes overwrite the expanded entries of
shorter ones, preserving longest-prefix-match semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

LEAF_FLAG = 1 << 24
POINTER_FLAG = 1 << 25
PORT_SHIFT = 16
PORT_MASK = 0xFF
NEXTHOP_MASK = 0xFFFF

IPV4_L1_SIZE = 1 << 16
BLOCK_SIZE = 256


def leaf_entry(port: int, next_hop: int) -> int:
    return LEAF_FLAG | ((port & PORT_MASK) << PORT_SHIFT) | (next_hop & NEXTHOP_MASK)


def pointer_entry(block_index: int) -> int:
    return POINTER_FLAG | (block_index & 0xFFFF)


@dataclass
class _Node:
    """One in-construction trie block (only as wide as its stride).

    ``lens`` records the prefix length that produced each expanded entry,
    so a shorter prefix inserted later never clobbers a longer one
    (longest-prefix-match is insertion-order independent).
    """

    width: int
    entries: list = field(default=None)  # type: ignore[assignment]
    lens: list = field(default=None)  # type: ignore[assignment]
    children: dict[int, "_Node"] = field(default_factory=dict)

    def __post_init__(self):
        if self.entries is None:
            self.entries = [0] * self.width
        if self.lens is None:
            self.lens = [0] * self.width


class _Trie:
    """A multibit trie with arbitrary per-level strides."""

    def __init__(self, strides: list[int]):
        self.strides = strides
        self.root = _Node(1 << strides[0])

    def insert(self, prefix: int, plen: int, value: int, total_bits: int) -> None:
        """Install ``prefix/plen`` mapping to ``value`` (a leaf entry)."""
        if not 0 < plen <= total_bits:
            raise ValueError(f"bad prefix length {plen}")
        node = self.root
        consumed = 0
        for level, stride in enumerate(self.strides):
            remaining = plen - consumed
            shift = total_bits - consumed - stride
            index_bits = (prefix >> shift) & ((1 << stride) - 1)
            if remaining <= stride:
                # Expand into this level.
                span = 1 << (stride - remaining)
                base = (index_bits >> (stride - remaining)) << (stride - remaining)
                for offset in range(span):
                    slot = base + offset
                    child = node.children.get(slot)
                    if child is not None:
                        # More-specific routes live below; fill their holes.
                        _fill_default(child, value, plen)
                    elif plen >= node.lens[slot]:
                        node.entries[slot] = value
                        node.lens[slot] = plen
                return
            child = node.children.get(index_bits)
            if child is None:
                if level + 1 >= len(self.strides):
                    raise ValueError(f"prefix length {plen} too long for trie")
                child = _Node(1 << self.strides[level + 1])
                # Push any existing leaf down as the child's default.
                existing = node.entries[index_bits]
                if existing:
                    child.entries = [existing] * child.width
                    child.lens = [node.lens[index_bits]] * child.width
                node.children[index_bits] = child
            node = child
            consumed += stride
        raise AssertionError("unreachable")


def _fill_default(node: _Node, value: int, plen: int) -> None:
    for index in range(node.width):
        child = node.children.get(index)
        if child is not None:
            _fill_default(child, value, plen)
        elif plen >= node.lens[index]:
            node.entries[index] = value
            node.lens[index] = plen


def _flatten(trie: _Trie, block_region: list[int]) -> list[int]:
    """Serialize child blocks into ``block_region``; return the root level."""

    def serialize(node: _Node) -> None:
        for index in sorted(node.children):
            child = node.children[index]
            serialize(child)
            block_index = len(block_region) // BLOCK_SIZE
            block = list(child.entries)
            # Children of the child were already serialized and patched.
            block_region.extend(block + [0] * (BLOCK_SIZE - len(block)))
            node.entries[index] = pointer_entry(block_index)

    # Serialize bottom-up: recursion above already does (children first).
    serialize(trie.root)
    return list(trie.root.entries)


class Ipv4RouteTable:
    """Builds the ``rt_l1`` / ``rt_nodes`` regions for the IPv4 trie."""

    STRIDES = [16, 8, 8]

    def __init__(self):
        self._trie = _Trie(self.STRIDES)
        self.routes: list[tuple[int, int, int, int]] = []

    def add_route(self, prefix: int, plen: int, port: int, next_hop: int) -> None:
        value = leaf_entry(port, next_hop)
        self._trie.insert(prefix & 0xFFFFFFFF, plen, value, 32)
        self.routes.append((prefix, plen, port, next_hop))

    def build(self) -> tuple[list[int], list[int]]:
        """Returns ``(rt_l1, rt_nodes)`` region contents."""
        nodes: list[int] = [0] * BLOCK_SIZE  # block 0 reserved (null pointer)
        level1 = _flatten(self._trie, nodes)
        return level1, nodes

    def lookup(self, address: int) -> tuple[int, int] | None:
        """Host-side reference lookup -> (port, next_hop) or None."""
        level1, nodes = self.build()
        entry = level1[(address >> 16) & 0xFFFF]
        for shift in (8, 0):
            if entry & LEAF_FLAG:
                break
            if not entry & POINTER_FLAG:
                return None
            block = (entry & 0xFFFF) * BLOCK_SIZE
            entry = nodes[block + ((address >> shift) & 0xFF)]
        if not entry & LEAF_FLAG:
            return None
        return (entry >> PORT_SHIFT) & PORT_MASK, entry & NEXTHOP_MASK


class Ipv6RouteTable:
    """Builds the ``rt6_nodes`` region: an 8-bit-stride trie over the top
    64 bits of the IPv6 destination.  Block 0 is the root."""

    STRIDES = [8] * 8

    def __init__(self):
        self._trie = _Trie(self.STRIDES)
        self.routes: list[tuple[int, int, int, int]] = []

    def add_route(self, prefix_top64: int, plen: int, port: int,
                  next_hop: int) -> None:
        if plen > 64:
            raise ValueError("IPv6 routes beyond /64 are not supported")
        value = leaf_entry(port, next_hop)
        self._trie.insert(prefix_top64 & ((1 << 64) - 1), plen, value, 64)
        self.routes.append((prefix_top64, plen, port, next_hop))

    def build(self) -> list[int]:
        nodes: list[int] = []
        # Root must be block 0: reserve it, serialize children after it.
        root_placeholder = [0] * BLOCK_SIZE
        nodes.extend(root_placeholder)
        children: list[int] = []
        level_root = _flatten(self._trie, children)
        # Child block indices were assigned relative to `children`; they
        # must be shifted by 1 (the root block).
        shifted = [_shift_pointer(entry, 1) for entry in children]
        root = [_shift_pointer(entry, 1) for entry in level_root]
        nodes[0:BLOCK_SIZE] = root + [0] * (BLOCK_SIZE - len(root))
        nodes.extend(shifted)
        return nodes

    def lookup(self, address_top64: int) -> tuple[int, int] | None:
        nodes = self.build()
        block = 0
        for level in range(8):
            shift = 64 - 8 * (level + 1)
            entry = nodes[block * BLOCK_SIZE + ((address_top64 >> shift) & 0xFF)]
            if entry & LEAF_FLAG:
                return (entry >> PORT_SHIFT) & PORT_MASK, entry & NEXTHOP_MASK
            if not entry & POINTER_FLAG:
                return None
            block = entry & 0xFFFF
        return None


def _shift_pointer(entry: int, delta: int) -> int:
    if entry & POINTER_FLAG:
        return POINTER_FLAG | ((entry & 0xFFFF) + delta)
    return entry

"""The IPv6 forwarding path (used by the combined IP forwarding PPS).

Validation, hop-limit handling, martian filtering, a one-step extension
header walk, and an 8-level 8-bit-stride trie lookup over the top 64
destination bits (fully unrolled — the IPv6 path is longer than the IPv4
path, as in the paper's IP forwarding benchmark).
"""

from __future__ import annotations

from repro.apps.common import (
    META_CLASS,
    META_LEN,
    META_NEXT_HOP,
    META_OUT_PORT,
    TAG_DROP6_EXT,
    TAG_DROP6_HOPLIMIT,
    TAG_DROP6_MARTIAN,
    TAG_DROP6_NOROUTE,
    TAG_FWD6,
)

#: Region names the IPv6 path expects.
IPV6_REGIONS = """
readonly memory rt6_nodes[32768];
readonly memory class6_map[64];
readonly memory acl6_rules[64];
readonly memory policer6[16];
"""

#: Number of (value, mask, match-on-src, action) IPv6 ACL rules.
ACL6_RULES = 8


def _unrolled_acl6(indent: str) -> str:
    """Unrolled first-match ACL over the top 32 destination/source bits."""
    lines = [f"{indent}int acl6_action = 0;", f"{indent}int acl6_hit = 0;"]
    for rule in range(ACL6_RULES):
        base = rule * 4
        lines.extend([
            f"{indent}if (acl6_hit == 0) {{",
            f"{indent}    int a6v{rule} = mem_read(acl6_rules, {base});",
            f"{indent}    int a6m{rule} = mem_read(acl6_rules, {base + 1});",
            f"{indent}    int a6s{rule} = mem_read(acl6_rules, {base + 2});",
            f"{indent}    int a6subj{rule} = dst_hi;",
            f"{indent}    if (a6s{rule} != 0) {{",
            f"{indent}        a6subj{rule} = src_hi;",
            f"{indent}    }}",
            f"{indent}    if ((a6subj{rule} & a6m{rule}) == a6v{rule}"
            f" && a6m{rule} != 0) {{",
            f"{indent}        acl6_action = mem_read(acl6_rules, {base + 3});",
            f"{indent}        acl6_hit = 1;",
            f"{indent}    }}",
            f"{indent}}}",
        ])
    return "\n".join(lines)


def _unrolled_trie6(indent: str) -> str:
    """Eight unrolled trie levels over dst_hi (32 bits) then dst_lo."""
    lines = [f"{indent}int node6 = 0;", f"{indent}int entry6 = 0;",
             f"{indent}int done6 = 0;"]
    for level in range(8):
        if level < 4:
            source = "dst_hi"
            shift = 24 - 8 * level
        else:
            source = "dst_mid"
            shift = 24 - 8 * (level - 4)
        lines.append(f"{indent}if (done6 == 0) {{")
        lines.append(f"{indent}    int nib{level} = ({source} >> {shift}) & 0xFF;")
        lines.append(f"{indent}    int cand{level} = "
                     f"mem_read(rt6_nodes, node6 * 256 + nib{level});")
        lines.append(f"{indent}    if ((cand{level} & 0x1000000) != 0) {{")
        lines.append(f"{indent}        entry6 = cand{level};")
        lines.append(f"{indent}        done6 = 1;")
        lines.append(f"{indent}    }}")
        lines.append(f"{indent}    else if ((cand{level} & 0x2000000) != 0) {{")
        lines.append(f"{indent}        node6 = cand{level} & 0xFFFF;")
        lines.append(f"{indent}    }}")
        lines.append(f"{indent}    else {{")
        lines.append(f"{indent}        done6 = 1;")
        lines.append(f"{indent}    }}")
        lines.append(f"{indent}}}")
    return "\n".join(lines)


def ipv6_body(handle: str, base_reg: str, out_pipe: str,
              *, indent: str = "        ") -> str:
    """The IPv6 validation/lookup/update path (PPS-C text)."""
    trie = _unrolled_trie6(indent)
    acl6 = _unrolled_acl6(indent)
    return f"""
{indent}int v6_first = pkt_load({handle}, {base_reg});
{indent}if (((v6_first >> 4) & 0xF) != 6) {{
{indent}    pkt_free({handle});
{indent}    trace({TAG_DROP6_MARTIAN} + 300, v6_first);
{indent}    continue;
{indent}}}
{indent}int pkt_bytes6 = pkt_meta_get({handle}, {META_LEN});
{indent}if (pkt_bytes6 < {base_reg} + 40) {{
{indent}    pkt_free({handle});
{indent}    trace({TAG_DROP6_MARTIAN} + 400, pkt_bytes6);
{indent}    continue;
{indent}}}
{indent}int payload_len = pkt_load_u16({handle}, {base_reg} + 4);
{indent}if ({base_reg} + 40 + payload_len > pkt_bytes6) {{
{indent}    pkt_free({handle});
{indent}    trace({TAG_DROP6_MARTIAN} + 500, payload_len);
{indent}    continue;
{indent}}}
{indent}int hop_limit = pkt_load({handle}, {base_reg} + 7);
{indent}if (hop_limit <= 1) {{
{indent}    pkt_free({handle});
{indent}    trace({TAG_DROP6_HOPLIMIT}, hop_limit);
{indent}    continue;
{indent}}}
{indent}int next_hdr = pkt_load({handle}, {base_reg} + 6);
{indent}int l4_base = {base_reg} + 40;
{indent}if (next_hdr == 0) {{
{indent}    // One hop-by-hop extension header step; chains are slow-path.
{indent}    if (l4_base + 8 > pkt_bytes6) {{
{indent}        pkt_free({handle});
{indent}        trace({TAG_DROP6_EXT}, next_hdr);
{indent}        continue;
{indent}    }}
{indent}    int ext_next = pkt_load({handle}, l4_base);
{indent}    int ext_len = pkt_load({handle}, l4_base + 1);
{indent}    l4_base = l4_base + 8 + ext_len * 8;
{indent}    next_hdr = ext_next;
{indent}    if (next_hdr == 0) {{
{indent}        pkt_free({handle});
{indent}        trace({TAG_DROP6_EXT} + 100, next_hdr);
{indent}        continue;
{indent}    }}
{indent}}}
{indent}int src_hi = pkt_load_u32({handle}, {base_reg} + 8);
{indent}int src_top = (src_hi >> 24) & 0xFF;
{indent}if (src_top == 0xFF) {{
{indent}    // Multicast source is invalid.
{indent}    pkt_free({handle});
{indent}    trace({TAG_DROP6_MARTIAN}, src_hi);
{indent}    continue;
{indent}}}
{indent}int src_lo_check = pkt_load_u32({handle}, {base_reg} + 12);
{indent}if (src_hi == 0 && src_lo_check == 0) {{
{indent}    // Unspecified source (top 64 bits zero is close enough here).
{indent}    pkt_free({handle});
{indent}    trace({TAG_DROP6_MARTIAN} + 100, src_hi);
{indent}    continue;
{indent}}}
{indent}int dst_hi = pkt_load_u32({handle}, {base_reg} + 24);
{indent}int dst_mid = pkt_load_u32({handle}, {base_reg} + 28);
{indent}int dst_top = (dst_hi >> 24) & 0xFF;
{indent}if (dst_top == 0xFF) {{
{indent}    // Multicast forwarding is out of the fast path.
{indent}    pkt_free({handle});
{indent}    trace({TAG_DROP6_MARTIAN} + 200, dst_hi);
{indent}    continue;
{indent}}}
{trie}
{indent}if (entry6 == 0 || (entry6 & 0x1000000) == 0) {{
{indent}    pkt_free({handle});
{indent}    trace({TAG_DROP6_NOROUTE}, dst_hi);
{indent}    continue;
{indent}}}
{acl6}
{indent}if (acl6_action == 2) {{
{indent}    pkt_free({handle});
{indent}    trace({TAG_DROP6_MARTIAN} + 600, dst_hi);
{indent}    continue;
{indent}}}
{indent}// Flow-label based policing: pick a token bucket by flow hash.
{indent}int flow_label = pkt_load_u32({handle}, {base_reg}) & 0xFFFFF;
{indent}int src_lo6 = pkt_load_u32({handle}, {base_reg} + 16);
{indent}int dst_lo6 = pkt_load_u32({handle}, {base_reg} + 32);
{indent}int bucket6 = hash32(flow_label ^ src_lo6 ^ dst_lo6) & 15;
{indent}int rate6 = mem_read(policer6, bucket6);
{indent}int color6 = 0;
{indent}if (rate6 != 0) {{
{indent}    int burst6 = (payload_len * 8) / (rate6 + 1);
{indent}    if (burst6 > 64) {{
{indent}        color6 = 2;
{indent}    }}
{indent}    else if (burst6 > 16) {{
{indent}        color6 = 1;
{indent}    }}
{indent}}}
{indent}pkt_store({handle}, {base_reg} + 7, hop_limit - 1);
{indent}int tclass6 = ((pkt_load({handle}, {base_reg}) & 0xF) << 4)
{indent}    | ((pkt_load({handle}, {base_reg} + 1) >> 4) & 0xF);
{indent}int class_val6 = mem_read(class6_map, (tclass6 >> 2) & 0x3F);
{indent}int flow6 = hash32(src_hi ^ dst_hi ^ (next_hdr << 16) ^ dst_mid);
{indent}pkt_meta_set({handle}, {META_CLASS},
{indent}    ((class_val6 ^ color6) << 16) | (flow6 & 0xFFFF));
{indent}pkt_meta_set({handle}, {META_OUT_PORT}, (entry6 >> 16) & 0xFF);
{indent}pkt_meta_set({handle}, {META_NEXT_HOP}, entry6 & 0xFFFF);
{indent}trace({TAG_FWD6}, dst_hi);
{indent}pipe_send({out_pipe}, {handle});
"""

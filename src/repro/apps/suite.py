"""Assembled benchmark applications (paper Figure 18).

``build_app`` returns a compiled :class:`AppInstance` for each PPS of the
two NPF benchmarks:

* IPv4 forwarding: ``rx``, ``ipv4``, ``scheduler``, ``qm``, ``tx``;
* IP forwarding: ``rx``, ``ip`` (with v4 and v6 traffic variants), ``tx``.

Each instance knows how to populate a fresh machine state with its input
traffic and supporting tables, so the evaluation harness and the tests
drive every PPS identically.  ``full_ipv4_source`` additionally assembles
the five PPSes of the IPv4 forwarding application into one program for
whole-application runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.apps import qm as qm_mod
from repro.apps.common import (
    META_IN_PORT,
    META_LEN,
    META_OUT_PORT,
    META_SEQ,
)
from repro.apps.ip import ip_source
from repro.apps.ipv4 import ipv4_source
from repro.apps.qm import qm_source
from repro.apps.rx import rx_source
from repro.apps.scheduler import scheduler_source
from repro.apps.tables import Ipv4RouteTable, Ipv6RouteTable
from repro.apps.traffic import TrafficConfig, TrafficGenerator
from repro.apps.tx import tx_source
from repro.ir.function import Module
from repro.ir.inline import inline_module
from repro.ir.lowering import lower_program
from repro.ir.optimize import optimize_module
from repro.lang import compile_source
from repro.runtime.state import MachineState

#: Prefixes every benchmark route table covers (traffic draws from them).
IPV4_PREFIXES = [
    (0x0A000000, 8),    # 10/8
    (0x0A010000, 16),   # 10.1/16
    (0x0A010200, 24),   # 10.1.2/24
    (0xC0A80000, 16),   # 192.168/16
    (0xAC100000, 12),   # 172.16/12
    (0x08080000, 20),
    (0x5DB80000, 17),
    (0x22C00000, 10),
]

IPV6_PREFIXES = [
    (0x2001_0db8_0000_0000, 32),
    (0x2001_0db8_0001_0000, 48),
    (0x2001_0db8_0001_0002, 64),
    (0x2600_1f00_0000_0000, 24),
    (0x2a03_2880_f000_0000, 40),
    (0xfd00_1234_0000_0000, 16),
]


def build_ipv4_tables() -> tuple[list[int], list[int]]:
    table = Ipv4RouteTable()
    for index, (prefix, plen) in enumerate(IPV4_PREFIXES):
        table.add_route(prefix, plen, port=index % 4, next_hop=100 + index)
    return table.build()


def build_ipv6_tables() -> list[int]:
    table = Ipv6RouteTable()
    for index, (prefix, plen) in enumerate(IPV6_PREFIXES):
        table.add_route(prefix, plen, port=index % 4, next_hop=200 + index)
    return table.build()


def combine_sources(*sources: str) -> str:
    """Concatenate PPS-C sources, dropping duplicate one-line declarations
    (shared pipes and memory regions are declared once)."""
    seen: set[str] = set()
    lines: list[str] = []
    for source in sources:
        for line in source.splitlines():
            stripped = line.strip()
            is_decl = (stripped.startswith(("pipe ", "memory ",
                                            "readonly memory "))
                       and stripped.endswith(";"))
            if is_decl:
                if stripped in seen:
                    continue
                seen.add(stripped)
            lines.append(line)
    return "\n".join(lines)


@dataclass
class AppInstance:
    """One compiled benchmark PPS plus its input-feeding recipe."""

    name: str
    pps_name: str
    source: str
    module: Module
    setup: Callable[[MachineState], int] = field(repr=False, default=None)
    description: str = ""
    #: Traffic-class setups for profile-dimensioned balancing (multi-path
    #: PPSes like the IP PPS provide one per code path).
    profile_setups: list = field(repr=False, default=None)
    #: Chaos-harness split of ``setup``: ``stream()`` returns the input
    #: packet list, ``feed(state, stream)`` loads tables and feeds an
    #: (optionally perturbed) stream.  Only stream-driven PPSes provide
    #: them; ``setup`` stays the single-call path everywhere else.
    stream: Callable[[], list] = field(repr=False, default=None)
    feed: Callable[[MachineState, list], int] = field(repr=False,
                                                      default=None)

    def fresh_state(self, **kwargs) -> tuple[MachineState, int]:
        """A populated machine state and the iteration budget for stage 1."""
        state = MachineState(self.module, **kwargs)
        iterations = self.setup(state)
        return state, iterations

    def fresh_state_with_stream(self, stream: list,
                                **kwargs) -> tuple[MachineState, int]:
        """Like :meth:`fresh_state` but feeding a caller-supplied (e.g.
        fault-perturbed) packet stream; requires ``feed``."""
        if self.feed is None:
            raise ValueError(f"app {self.name!r} has no stream/feed split")
        state = MachineState(self.module, **kwargs)
        iterations = self.feed(state, stream)
        return state, iterations


def _compile(source: str) -> Module:
    module = lower_program(compile_source(source))
    inline_module(module)
    optimize_module(module)
    return module


def _load_common_tables(state: MachineState) -> None:
    if "rt_l1" in state.regions:
        level1, nodes = build_ipv4_tables()
        state.load_region("rt_l1", level1)
        state.load_region("rt_nodes", nodes)
    if "rt6_nodes" in state.regions:
        state.load_region("rt6_nodes", build_ipv6_tables())
    if "class_map" in state.regions:
        state.load_region("class_map", [(i * 3 + 1) & 0x7 for i in range(64)])
    if "acl_rules" in state.regions:
        # (value, mask, match-on-src, action): action 2 = deny, 3 = remark.
        rules = [
            0x0A630000, 0xFFFF0000, 0, 2,   # deny dst 10.99/16 (rare)
            0xAC100000, 0xFFF00000, 0, 3,   # remark dst 172.16/12
            0x7F000000, 0xFF000000, 1, 2,   # deny src loopback (redundant)
            0xC0A82A00, 0xFFFFFF00, 1, 3,   # remark src 192.168.42/24
        ]
        state.load_region("acl_rules", rules + [0] * (64 - len(rules)))
    if "class6_map" in state.regions:
        state.load_region("class6_map", [(i * 5 + 2) & 0x7 for i in range(64)])


def _traffic(count: int, seed: int, **kwargs) -> TrafficGenerator:
    config = TrafficConfig(seed=seed, count=count, **kwargs)
    return TrafficGenerator(config, ipv4_prefixes=IPV4_PREFIXES,
                            ipv6_prefixes=IPV6_PREFIXES)


def _adopt_stream(state: MachineState, packets: list[bytes],
                  pipe: str) -> None:
    for index, data in enumerate(packets):
        handle = state.packets.adopt(data, meta={
            META_LEN: len(data),
            META_IN_PORT: 0,
            META_SEQ: index + 1,
        })
        state.pipe(pipe).send(handle)


def build_app(name: str, *, packets: int = 200, seed: int = 7) -> AppInstance:
    """Build one benchmark PPS by name.

    Names: ``rx``, ``ipv4``, ``ip_v4``, ``ip_v6``, ``scheduler``, ``qm``,
    ``tx``.
    """
    if name == "rx":
        source = rx_source()
        module = _compile(source)

        def stream() -> list:
            return _traffic(packets, seed).ipv4_stream()

        def feed(state: MachineState, stream: list) -> int:
            for data in stream:
                state.devices.feed_packet(0, data)
            return len(stream)

        def setup(state: MachineState) -> int:
            return feed(state, stream())

        return AppInstance(name, "rx", source, module, setup,
                           "packet receive / reassembly",
                           stream=stream, feed=feed)

    if name == "ipv4":
        source = ipv4_source()
        module = _compile(source)

        def stream() -> list:
            return _traffic(packets, seed).ipv4_stream()

        def feed(state: MachineState, stream: list) -> int:
            _load_common_tables(state)
            _adopt_stream(state, stream, "ipv4_in")
            return len(stream)

        def setup(state: MachineState) -> int:
            return feed(state, stream())

        return AppInstance(name, "ipv4", source, module, setup,
                           "IPv4 forwarding (NPF IPv4 benchmark)",
                           stream=stream, feed=feed)

    if name in ("ip_v4", "ip_v6"):
        source = ip_source()
        module = _compile(source)
        use_v6 = name.endswith("v6")

        def stream() -> list:
            generator = _traffic(packets, seed)
            return (generator.ipv6_stream() if use_v6
                    else generator.ipv4_stream())

        def feed(state: MachineState, stream: list) -> int:
            _load_common_tables(state)
            _adopt_stream(state, stream, "ip_in")
            return len(stream)

        def setup(state: MachineState) -> int:
            return feed(state, stream())

        def setup_v4(state: MachineState) -> int:
            _load_common_tables(state)
            stream = _traffic(packets, seed).ipv4_stream()
            _adopt_stream(state, stream, "ip_in")
            return len(stream)

        def setup_v6(state: MachineState) -> int:
            _load_common_tables(state)
            stream = _traffic(packets, seed).ipv6_stream()
            _adopt_stream(state, stream, "ip_in")
            return len(stream)

        traffic_kind = "IPv6" if use_v6 else "IPv4"
        return AppInstance(name, "ip", source, module, setup,
                           f"IP forwarding, {traffic_kind} traffic",
                           profile_setups=[setup_v4, setup_v6],
                           stream=stream, feed=feed)

    if name == "scheduler":
        source = scheduler_source()
        module = _compile(source)

        def setup(state: MachineState) -> int:
            state.load_region("sched_weights", [4, 2, 1, 1])
            state.load_region("qlen", [packets // 2, packets // 4,
                                       packets // 8, packets // 8])
            state.load_region("sched_state", [0, 4, 0, 0, 0, 0])
            return packets

        return AppInstance(name, "scheduler", source, module, setup,
                           "WRR scheduler (shared flow state)")

    if name == "qm":
        source = qm_source()
        module = _compile(source)

        def setup(state: MachineState) -> int:
            _load_common_tables(state)
            stream = _traffic(packets, seed).ipv4_stream()
            _adopt_stream(state, stream, "qm_enq")
            for index in range(packets // 2):
                state.pipe("qm_deq").send(index % qm_mod.N_QUEUES)
            return packets + packets // 2

        return AppInstance(name, "qm", source, module, setup,
                           "queue manager (shared flow state)")

    if name == "tx":
        source = tx_source()
        module = _compile(source)

        def setup(state: MachineState) -> int:
            stream = _traffic(packets, seed).ipv4_stream()
            for index, data in enumerate(stream):
                handle = state.packets.adopt(data, meta={
                    META_LEN: len(data),
                    META_OUT_PORT: index % 4,
                    META_SEQ: index + 1,
                })
                state.pipe("tx_in").send(handle)
            return len(stream)

        return AppInstance(name, "tx", source, module, setup,
                           "packet transmit / segmentation")

    raise ValueError(f"unknown app {name!r}")


#: All PPSes of the two benchmarks, in paper order.
IPV4_FORWARDING_PPSES = ["rx", "ipv4", "scheduler", "qm", "tx"]
IP_FORWARDING_PPSES = ["rx", "ip_v4", "ip_v6", "tx"]


def full_ipv4_source() -> str:
    """The whole IPv4 forwarding application (five chained PPSes)."""
    return combine_sources(
        rx_source(out_pipe="rx2ip"),
        ipv4_source(in_pipe="rx2ip", out_pipe="qm_enq"),
        scheduler_source(out_pipe="qm_deq"),
        qm_source(enq_pipe="qm_enq", deq_pipe="qm_deq", out_pipe="tx_in",
                  declare_qlen=False),
        tx_source(in_pipe="tx_in"),
    )


def full_ip_source() -> str:
    """The whole IP forwarding application (paper Figure 18b):
    RX -> IP (v4 + v6 paths) -> TX."""
    return combine_sources(
        rx_source(out_pipe="rx2ip"),
        ip_source(in_pipe="rx2ip", out_pipe="tx_in"),
        tx_source(in_pipe="tx_in"),
    )

"""Observability: phase tracing, runtime counters, structured reports.

* :mod:`repro.obs.tracer` — Chrome-trace span/event tracer with a
  zero-overhead disabled path, plus the :class:`PhaseTimer` the bench
  harness uses for its phase breakdown;
* :mod:`repro.obs.report` — per-stage / per-pipe / scheduler counter
  reports assembled after a run.

See ``docs/observability.md`` for the trace format and counter glossary.
"""

# tracer (no repro dependencies) must load before report (which pulls in
# repro.runtime.state): instrumented runtime modules import this package
# mid-initialization and need the ``tracer`` attribute bound first.
from repro.obs.tracer import (
    TID_COMPILE,
    TID_RUNTIME,
    PhaseTimer,
    Tracer,
    active,
    counter,
    instant,
    span,
    tracing,
)
from repro.obs.report import (
    PipeCounters,
    RuntimeReport,
    StageCounters,
    emit_counter_events,
    runtime_report,
)

__all__ = [
    "PhaseTimer",
    "PipeCounters",
    "RuntimeReport",
    "StageCounters",
    "TID_COMPILE",
    "TID_RUNTIME",
    "Tracer",
    "active",
    "counter",
    "emit_counter_events",
    "instant",
    "runtime_report",
    "span",
    "tracing",
]

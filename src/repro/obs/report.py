"""Structured runtime counter reports.

After a scheduler run, :func:`runtime_report` assembles the counters the
execution core already maintains — per-interpreter
:class:`~repro.runtime.interp.InterpStats`, the per-pipe send/recv/depth
tallies on :class:`~repro.runtime.state.Pipe`, and the park/notify/wake
tallies on :class:`~repro.runtime.state.WakeHub` — into one structured,
JSON-serializable report.  Nothing here touches the hot loops: the report
is a pure read-out, which is how tracing stays free when disabled.

``repro run --profile`` renders the report as text; ``repro trace``
additionally folds it into the Chrome trace as counter events
(:func:`emit_counter_events`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.tracer import TID_COMPILE, TID_RUNTIME, Tracer
from repro.runtime.state import MachineState


@dataclass
class StageCounters:
    """Execution totals of one interpreter (PPS or pipeline stage)."""

    name: str
    instructions: int
    weight: int                  # machine-model cycles
    iterations: int
    transmission_weight: int
    blocked: int


@dataclass
class PipeCounters:
    """Traffic totals of one pipe."""

    name: str
    sent: int
    received: int
    high_water: int              # depth high-water mark
    residual: int                # messages left after the run


@dataclass
class RuntimeReport:
    """Per-stage / per-pipe / scheduler counters of one run."""

    stages: list[StageCounters] = field(default_factory=list)
    pipes: list[PipeCounters] = field(default_factory=list)
    wake_parks: int = 0
    wake_notifies: int = 0
    wake_wakes: int = 0
    wake_stranded: int = 0
    #: Chaos sections — populated only when the corresponding feature ran
    #: (``faults`` from an armed FaultInjector, ``watchdog`` from a
    #: Watchdog, ``dead_letters`` from trap isolation); None/empty keeps
    #: fault-free reports byte-compatible.
    faults: dict | None = None
    watchdog: dict | None = None
    dead_letters: list = field(default_factory=list)
    #: Compile-cache counters (hits/misses/stores/corrupt/evictions) —
    #: populated only when the run compiled through a CompileCache.
    cache: dict | None = None
    #: Supervised-partition outcome (verifier verdict, achieved vs
    #: requested degree) — populated only when the run partitioned
    #: through the supervisor.
    partition: dict | None = None
    #: Serving-supervisor counters (workers spawned, restarts, journal
    #: replays, redeliveries, re-shardings) — populated only when the
    #: run went through the sharded serving runtime (``repro serve``).
    serve: dict | None = None

    def as_dict(self) -> dict:
        result = {
            "stages": [vars(stage).copy() for stage in self.stages],
            "pipes": [vars(pipe).copy() for pipe in self.pipes],
            "wake_hub": {
                "parks": self.wake_parks,
                "notifies": self.wake_notifies,
                "wakes": self.wake_wakes,
                "stranded": self.wake_stranded,
            },
        }
        if self.faults is not None:
            result["faults"] = dict(self.faults)
        if self.watchdog is not None:
            result["watchdog"] = dict(self.watchdog)
        if self.dead_letters:
            result["dead_letters"] = [letter.as_dict()
                                      for letter in self.dead_letters]
        if self.cache is not None:
            result["cache"] = dict(self.cache)
        if self.partition is not None:
            result["partition"] = dict(self.partition)
        if self.serve is not None:
            result["serve"] = dict(self.serve)
        return result

    def render(self) -> str:
        """Text rendering for ``repro run --profile``."""
        lines = ["runtime profile:"]
        if self.stages:
            lines.append("  stage                        instrs   cycles "
                         "  iters  tx-cycles  blocked")
            for stage in self.stages:
                lines.append(
                    f"  {stage.name:26s} {stage.instructions:8d} "
                    f"{stage.weight:8d} {stage.iterations:7d} "
                    f"{stage.transmission_weight:10d} {stage.blocked:8d}")
        if self.pipes:
            lines.append("  pipe                           sent recvd "
                         "high-water residual")
            for pipe in self.pipes:
                lines.append(
                    f"  {pipe.name:28s} {pipe.sent:6d} {pipe.received:5d} "
                    f"{pipe.high_water:10d} {pipe.residual:8d}")
        lines.append(f"  wake-hub: {self.wake_parks} parks, "
                     f"{self.wake_notifies} notifies, "
                     f"{self.wake_wakes} wakes, "
                     f"{self.wake_stranded} stranded")
        if self.faults is not None:
            pairs = ", ".join(f"{key}={value}"
                              for key, value in self.faults.items()
                              if key not in ("plan", "seed") and value)
            label = self.faults.get("plan") or "anonymous"
            lines.append(f"  faults: plan {label} "
                         f"(seed {self.faults.get('seed')}) "
                         f"{pairs or 'no events'}")
        if self.watchdog is not None:
            lines.append(
                f"  watchdog: {self.watchdog.get('quiescence_checks', 0)} "
                f"quiescence checks, "
                f"{self.watchdog.get('progress_checks', 0)} progress checks")
        if self.dead_letters:
            lines.append(f"  dead letters: {len(self.dead_letters)}")
            for letter in self.dead_letters:
                lines.append(
                    f"    {letter.stage} iter {letter.iteration} "
                    f"block {letter.last_block}: {letter.detail}")
        if self.cache is not None:
            lines.append(
                f"  compile cache: {self.cache.get('hits', 0)} hits, "
                f"{self.cache.get('misses', 0)} misses, "
                f"{self.cache.get('stores', 0)} stores, "
                f"{self.cache.get('evictions', 0)} evicted, "
                f"{self.cache.get('corrupt', 0)} corrupt")
        if self.partition is not None:
            achieved = self.partition.get("achieved_degree")
            requested = self.partition.get("requested_degree")
            verdict = self.partition.get("verdict") or {}
            status = "verified" if verdict.get("ok") else "unverified"
            note = (f" (DEGRADED from {requested})"
                    if self.partition.get("degraded") else "")
            lines.append(f"  partition: {status} at degree {achieved}{note}, "
                         f"{len(self.partition.get('attempts', []))} "
                         f"attempts")
        if self.serve is not None:
            lines.append(
                f"  serve: {self.serve.get('workers_spawned', 0)} workers, "
                f"{self.serve.get('restarts', 0)} restarts, "
                f"{self.serve.get('replays', 0)} replays, "
                f"{self.serve.get('redeliveries', 0)} redeliveries, "
                f"{self.serve.get('committed', 0)}/"
                f"{self.serve.get('batches', 0)} batches committed, "
                f"{self.serve.get('resharded', 0)} resharded")
        return "\n".join(lines)


def runtime_report(stats: dict, state: MachineState, *,
                   watchdog=None, cache=None,
                   partition=None) -> RuntimeReport:
    """Assemble the report for one finished run.

    ``stats`` maps interpreter name -> ``InterpStats`` (e.g.
    ``RunResult.stats``); ``state`` is the machine the run executed on;
    ``watchdog`` optionally contributes its check counters; ``cache``
    (a :class:`repro.cache.CompileCache`) contributes hit/miss/evict
    counters when compilation went through the artifact cache;
    ``partition`` (a :class:`repro.pipeline.PartitionOutcome`)
    contributes the verifier verdict and achieved degree when
    partitioning went through the supervisor.
    """
    report = RuntimeReport()
    for name in sorted(stats):
        entry = stats[name]
        report.stages.append(StageCounters(
            name=name,
            instructions=entry.instructions,
            weight=entry.weight,
            iterations=entry.iterations,
            transmission_weight=entry.transmission_weight,
            blocked=entry.blocked,
        ))
    for name in sorted(state.pipes):
        pipe = state.pipes[name]
        if not (pipe.sent or pipe.received or pipe.queue):
            continue  # never touched: noise in wide modules
        report.pipes.append(PipeCounters(
            name=name,
            sent=pipe.sent,
            received=pipe.received,
            high_water=pipe.high_water,
            residual=len(pipe.queue),
        ))
    hub = state.wake_hub
    report.wake_parks = hub.parks
    report.wake_notifies = hub.notifies
    report.wake_wakes = hub.wakes
    report.wake_stranded = hub.stranded
    faults = getattr(state, "faults", None)
    if faults is not None:
        report.faults = faults.counters()
    if watchdog is not None:
        report.watchdog = watchdog.as_dict()
    report.dead_letters = list(getattr(state, "dead_letters", ()))
    if cache is not None:
        report.cache = cache.counters()
    if partition is not None:
        report.partition = partition.as_dict()
    return report


def emit_counter_events(tracer: Tracer, report: RuntimeReport) -> None:
    """Fold a runtime report into a trace as ``"C"`` counter events."""
    for stage in report.stages:
        tracer.counter(f"stage {stage.name}", {
            "instructions": stage.instructions,
            "cycles": stage.weight,
            "iterations": stage.iterations,
            "tx_cycles": stage.transmission_weight,
            "blocked": stage.blocked,
        }, cat="stage", tid=TID_RUNTIME)
    for pipe in report.pipes:
        tracer.counter(f"pipe {pipe.name}", {
            "sent": pipe.sent,
            "received": pipe.received,
            "high_water": pipe.high_water,
            "residual": pipe.residual,
        }, cat="pipe", tid=TID_RUNTIME)
    tracer.counter("wake_hub", {
        "parks": report.wake_parks,
        "notifies": report.wake_notifies,
        "wakes": report.wake_wakes,
        "stranded": report.wake_stranded,
    }, cat="scheduler", tid=TID_RUNTIME)
    if report.faults is not None:
        tracer.counter("faults", {
            key: value for key, value in report.faults.items()
            if isinstance(value, int) and key != "seed"
        }, cat="faults", tid=TID_RUNTIME)
    if report.watchdog is not None:
        tracer.counter("watchdog", {
            key: value for key, value in report.watchdog.items()
            if isinstance(value, int)
        }, cat="scheduler", tid=TID_RUNTIME)
    if report.cache is not None:
        tracer.counter("compile_cache", {
            key: value for key, value in report.cache.items()
            if isinstance(value, int)
        }, cat="cache", tid=TID_COMPILE)
    if report.serve is not None:
        tracer.counter("serve", {
            key: value for key, value in report.serve.items()
            if isinstance(value, int)
        }, cat="serve", tid=TID_RUNTIME)
    for letter in report.dead_letters:
        tracer.instant(f"dead_letter {letter.stage}", cat="faults",
                       tid=TID_RUNTIME, **letter.as_dict())

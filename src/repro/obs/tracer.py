"""Span/event tracing in Chrome trace format (the observability core).

One :class:`Tracer` collects timestamped events — *spans* (``"X"``
complete events with a duration), *instants* (``"i"``), and *counters*
(``"C"``) — and serializes them as Chrome-trace-format JSON, loadable in
``chrome://tracing`` or https://ui.perfetto.dev.

Instrumentation sites never hold a tracer; they call the module-level
hooks (:func:`span`, :func:`instant`, :func:`counter`), which consult the
currently *installed* tracer.  When none is installed — the default — the
hooks return immediately (``span`` hands back a shared no-op context
manager), so tracing that is disabled costs one ``None`` check per
*phase boundary*, never per simulated instruction; the interpreter and
scheduler hot loops carry no hooks at all (runtime counters are read out
of :class:`~repro.runtime.interp.InterpStats` and the always-on pipe /
wake-hub tallies after the run).  The overhead guard in
``tests/test_obs_overhead.py`` enforces this.

Install a tracer for a region with::

    from repro.obs import Tracer, tracing

    with tracing() as tracer:
        ...  # anything that runs here is recorded
    tracer.write("trace.json")

Timestamps are microseconds from the tracer's creation
(``perf_counter_ns`` based), the unit the Chrome trace viewer expects.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from time import perf_counter, perf_counter_ns

#: Synthetic process id for every event (one simulated machine).
TRACE_PID = 1

#: Thread-id lanes of the trace (Chrome renders one row per tid).
TID_COMPILE = 0   # compile phases: normalize, SSA, cuts, realize, ...
TID_RUNTIME = 1   # simulation spans and runtime counter events


class _NullSpan:
    """Shared no-op context manager returned when tracing is off."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """An open span; appends one ``"X"`` complete event on exit."""

    __slots__ = ("tracer", "name", "cat", "tid", "args", "start")

    def __init__(self, tracer: "Tracer", name: str, cat: str, tid: int,
                 args: dict):
        self.tracer = tracer
        self.name = name
        self.cat = cat
        self.tid = tid
        self.args = args
        self.start = tracer.now()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        tracer = self.tracer
        event = {
            "name": self.name,
            "cat": self.cat,
            "ph": "X",
            "ts": self.start,
            "dur": tracer.now() - self.start,
            "pid": TRACE_PID,
            "tid": self.tid,
        }
        if self.args:
            event["args"] = self.args
        tracer.events.append(event)
        return False


class Tracer:
    """Collects trace events; serializes to Chrome trace format."""

    def __init__(self):
        self.events: list[dict] = []
        self._t0 = perf_counter_ns()
        self._thread_names: dict[int, str] = {}
        self.name_thread(TID_COMPILE, "compile")
        self.name_thread(TID_RUNTIME, "runtime")

    def now(self) -> float:
        """Microseconds since the tracer was created."""
        return (perf_counter_ns() - self._t0) / 1000.0

    def name_thread(self, tid: int, name: str) -> None:
        """Label a tid lane (shown as the row name in the viewer)."""
        self._thread_names[tid] = name

    def span(self, name: str, *, cat: str = "", tid: int = TID_COMPILE,
             **args) -> _Span:
        return _Span(self, name, cat, tid, args)

    def instant(self, name: str, *, cat: str = "", tid: int = TID_COMPILE,
                **args) -> None:
        event = {
            "name": name,
            "cat": cat,
            "ph": "i",
            "s": "t",
            "ts": self.now(),
            "pid": TRACE_PID,
            "tid": tid,
        }
        if args:
            event["args"] = args
        self.events.append(event)

    def counter(self, name: str, values: dict, *, cat: str = "counters",
                tid: int = TID_RUNTIME) -> None:
        """One ``"C"`` counter sample (``values``: series name -> number)."""
        self.events.append({
            "name": name,
            "cat": cat,
            "ph": "C",
            "ts": self.now(),
            "pid": TRACE_PID,
            "tid": tid,
            "args": dict(values),
        })

    # -- serialization -------------------------------------------------------

    def to_chrome(self) -> dict:
        """The Chrome trace JSON object (events sorted by timestamp)."""
        events = sorted(self.events, key=lambda event: event["ts"])
        metadata = [
            {
                "name": "thread_name",
                "ph": "M",
                "ts": 0.0,
                "pid": TRACE_PID,
                "tid": tid,
                "args": {"name": name},
            }
            for tid, name in sorted(self._thread_names.items())
        ]
        return {
            "traceEvents": metadata + events,
            "displayTimeUnit": "ms",
        }

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome(), handle, indent=1)
            handle.write("\n")


# -- the installed tracer and the module-level hooks -------------------------

_ACTIVE: Tracer | None = None


def active() -> Tracer | None:
    """The installed tracer, or ``None`` when tracing is off."""
    return _ACTIVE


@contextmanager
def tracing(tracer: Tracer | None = None, *, enabled: bool = True):
    """Install ``tracer`` (a fresh one by default) for the ``with`` block.

    ``enabled=False`` is the explicit off-switch: nothing is installed and
    the block runs exactly as if no tracing existed (the disabled path the
    overhead guard test measures).
    """
    global _ACTIVE
    if not enabled:
        yield None
        return
    if tracer is None:
        tracer = Tracer()
    previous = _ACTIVE
    _ACTIVE = tracer
    try:
        yield tracer
    finally:
        _ACTIVE = previous


def span(name: str, *, cat: str = "", tid: int = TID_COMPILE, **args):
    """Open a span on the installed tracer (shared no-op when off)."""
    if _ACTIVE is None:
        return _NULL_SPAN
    return _ACTIVE.span(name, cat=cat, tid=tid, **args)


def instant(name: str, *, cat: str = "", tid: int = TID_COMPILE,
            **args) -> None:
    """Emit an instant event on the installed tracer (no-op when off)."""
    if _ACTIVE is not None:
        _ACTIVE.instant(name, cat=cat, tid=tid, **args)


def counter(name: str, values: dict, *, cat: str = "counters",
            tid: int = TID_RUNTIME) -> None:
    """Emit a counter sample on the installed tracer (no-op when off)."""
    if _ACTIVE is not None:
        _ACTIVE.counter(name, values, cat=cat, tid=tid)


class PhaseTimer:
    """Named wall-clock phases, tracer-backed.

    Replaces the ad-hoc ``t0 = perf_counter(); ...; x = perf_counter()-t0``
    boilerplate: each :meth:`phase` block accumulates its wall seconds
    under its name *and* records a span when a tracer is installed, so
    ``repro bench`` phase breakdowns and trace files come from the same
    clock.
    """

    def __init__(self):
        self.seconds: dict[str, float] = {}

    @contextmanager
    def phase(self, name: str, **args):
        with span(name, cat="bench", **args):
            start = perf_counter()
            try:
                yield
            finally:
                self.seconds[name] = (self.seconds.get(name, 0.0)
                                      + perf_counter() - start)

    def __getitem__(self, name: str) -> float:
        return self.seconds[name]

"""The shared exception hierarchy.

Every failure the toolchain can signal derives from :class:`ReproError`,
so embedders can catch one base class, and the CLI can map families to
distinct exit codes (see :mod:`repro.cli`):

* usage errors (``CLIError``, ``FaultPlanError``) — exit 2;
* compile/partition failures (``FrontendError``, ``PipelineError``) —
  exit 1;
* runtime traps and scheduler hangs (``TrapError`` and its device/packet
  subclasses, ``DeadlockError``) — exit 3;
* degraded success (``EXIT_DEGRADED``) — exit 4: the run *completed*,
  but the partition supervisor had to degrade to a lower pipelining
  degree than requested (see ``repro.pipeline.supervisor``).  Not an
  exception family: commands return the code after printing a one-line
  warning.
* degraded serving (``EXIT_DEGRADED_SERVE``) — exit 5: a ``repro
  serve`` run *delivered every committed batch*, but only by degrading
  the pool — a shard exhausted its restart budget and was re-sharded
  onto survivors, or a drain left undelivered batches behind (see
  ``repro.serve.supervise``).  Like exit 4, not an exception family:
  the command returns the code after a one-line stderr warning.

``TrapError`` is the new name of the interpreter's historical
``RuntimeError_``; the old name remains importable from
``repro.runtime.state`` as a deprecated alias.

This module must stay dependency-free: it is imported by the lowest
layers (state, devices, packets) and by the front end.
"""

from __future__ import annotations

#: CLI exit-code families (kept here so embedders need not import the CLI).
EXIT_OK = 0
EXIT_FAILURE = 1        # compile / partition / IO / sweep failure
EXIT_USAGE = 2          # bad flag value, unknown PPS, malformed plan
EXIT_RUNTIME = 3        # interpreter trap, deadlock / livelock
EXIT_DEGRADED = 4       # success at a lower pipelining degree than asked
EXIT_DEGRADED_SERVE = 5  # serve completed, but resharded or part-drained


class ReproError(Exception):
    """Base class of every error raised by the repro toolchain."""


class TrapError(ReproError):
    """A trap raised by the interpreter (bad memory access, injected
    fault, out-of-fuel, ...).  Formerly named ``RuntimeError_``."""


class FaultPlanError(ReproError):
    """A fault-injection plan is malformed (bad JSON, unknown fault kind,
    out-of-range rate)."""


class DeadlockError(ReproError):
    """The scheduler watchdog detected a deadlock or livelock.

    ``parked`` maps every parked interpreter name to its wait key;
    ``offenders`` is the subset the watchdog classified as unwakeable;
    ``kind`` is ``"deadlock"`` (quiescence with unwakeable waiters) or
    ``"livelock"`` (no instruction progress within the quantum);
    ``report`` carries the run's :class:`~repro.obs.report.RuntimeReport`
    (WakeHub and Pipe counters) when one could be assembled.
    """

    def __init__(self, message: str, *, kind: str = "deadlock",
                 parked: dict | None = None,
                 offenders: dict | None = None,
                 report=None):
        super().__init__(message)
        self.kind = kind
        self.parked = dict(parked or {})
        self.offenders = dict(offenders or {})
        self.report = report
